"""Shared-memory arenas for the multicore protected-SpMV backend.

The ``processes`` plan backend maps every array the fused per-shard
pipeline touches — the CSR triplets of ``A`` and the checksum matrix
``C``, the weight vector, the operand, and all output/scratch buffers —
into **one** :class:`multiprocessing.shared_memory.SharedMemory` block.
Workers attach by name and reconstruct zero-copy NumPy views, so the
only per-multiply transfer is the operand vector (copied once by the
parent) and a few bytes of control traffic.

Layout is declared up front (:class:`ArenaLayout`), so the parent and
every worker resolve byte-identical views from the same spec; the spec
itself is a plain picklable object that travels to spawned workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Byte alignment of every array in an arena (covers int64/float64).
ARENA_ALIGNMENT = 64


def _aligned(offset: int) -> int:
    return -(-offset // ARENA_ALIGNMENT) * ARENA_ALIGNMENT


@dataclass(frozen=True)
class ArenaField:
    """One named array inside an arena: dtype, shape and byte offset."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


@dataclass(frozen=True)
class ArenaLayout:
    """An ordered, picklable map of array names to arena positions."""

    fields: Tuple[ArenaField, ...]
    size: int

    @classmethod
    def build(cls, specs: Iterable[Tuple[str, Tuple[int, ...], str]]) -> "ArenaLayout":
        """Lay out ``(name, shape, dtype)`` specs back to back, aligned.

        Every arena is at least one byte long so degenerate plans (empty
        matrices) still allocate a valid segment.
        """
        fields = []
        offset = 0
        seen = set()
        for name, shape, dtype in specs:
            if name in seen:
                raise ConfigurationError(f"duplicate arena field {name!r}")
            seen.add(name)
            offset = _aligned(offset)
            spec = ArenaField(name=name, dtype=dtype, shape=tuple(int(s) for s in shape), offset=offset)
            fields.append(spec)
            offset += spec.nbytes
        return cls(fields=tuple(fields), size=max(1, offset))

    def field(self, name: str) -> ArenaField:
        for candidate in self.fields:
            if candidate.name == name:
                return candidate
        raise ConfigurationError(
            f"unknown arena field {name!r}; expected one of "
            f"{tuple(f.name for f in self.fields)}"
        )


class Arena:
    """A :class:`SharedMemory` block carved into named NumPy views.

    The *owner* (the parent process) creates the segment and is the only
    party that may :meth:`unlink` it; workers :meth:`attach` by name and
    merely close their mapping on exit.  Views returned by
    :meth:`array` alias the segment directly — they become invalid the
    moment the mapping is closed, so the owner must keep the arena open
    for as long as any plan buffer is alive.
    """

    def __init__(self, layout: ArenaLayout, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self.layout = layout
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self._owner = owner
        self._unlinked = False
        self._views: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, layout: ArenaLayout) -> "Arena":
        """Allocate a fresh segment sized for ``layout`` (parent side)."""
        shm = shared_memory.SharedMemory(create=True, size=layout.size)
        return cls(layout, shm, owner=True)

    @classmethod
    def attach(cls, name: str, layout: ArenaLayout) -> "Arena":
        """Map an existing segment by name (worker side).

        Workers are always :mod:`multiprocessing` children of the owner,
        so they share the owner's resource tracker; the attach-side
        ``register`` is an idempotent no-op on the tracker's name set
        and the owner's eventual ``unlink`` deregisters it exactly once.
        (An attach-side *unregister* — the common recipe for unrelated
        processes with private trackers — would instead strip the
        owner's registration and make the final unlink warn.)
        """
        shm = shared_memory.SharedMemory(name=name)
        return cls(layout, shm, owner=False)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        if self._shm is None:
            raise ConfigurationError("arena is closed")
        return self._shm.name

    @property
    def closed(self) -> bool:
        return self._shm is None

    def array(self, name: str) -> np.ndarray:
        """Zero-copy view of field ``name`` (cached per arena)."""
        view = self._views.get(name)
        if view is None:
            if self._shm is None:
                raise ConfigurationError("arena is closed")
            spec = self.layout.field(name)
            view = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype), buffer=self._shm.buf, offset=spec.offset
            )
            self._views[name] = view
        return view

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop all views and the mapping; owners also unlink the name.

        Idempotent.  After close every previously returned view is
        dead — callers must not touch plan buffers past this point.
        """
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        self._views.clear()
        shm.close()
        if self._owner and not self._unlinked:
            self._unlinked = True
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already reaped
                pass

    def __enter__(self) -> "Arena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
