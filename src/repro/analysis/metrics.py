"""Evaluation metrics: F1 coverage score, runtime overhead, success rate."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError


@dataclass
class ConfusionCounts:
    """Detection-outcome tallies of an injection campaign.

    The paper's coverage metric (Section V-B) is the balanced F1 score::

        F1 = 2 TP / (2 TP + FN + FP)

    where TP are successfully detected errors, FN undetected errors, and FP
    mistakenly flagged error-free outputs.
    """

    true_positives: int = 0
    false_negatives: int = 0
    false_positives: int = 0
    true_negatives: int = 0

    def merge(self, other: "ConfusionCounts") -> "ConfusionCounts":
        """Combine two tallies (e.g. across matrices or seeds)."""
        return ConfusionCounts(
            self.true_positives + other.true_positives,
            self.false_negatives + other.false_negatives,
            self.false_positives + other.false_positives,
            self.true_negatives + other.true_negatives,
        )

    @property
    def trials(self) -> int:
        return (
            self.true_positives
            + self.false_negatives
            + self.false_positives
            + self.true_negatives
        )

    @property
    def f1(self) -> float:
        """Balanced F1 score (0 when the tally is empty)."""
        denominator = 2 * self.true_positives + self.false_negatives + self.false_positives
        if denominator == 0:
            return 0.0
        return 2 * self.true_positives / denominator

    @property
    def precision(self) -> float:
        detected = self.true_positives + self.false_positives
        return self.true_positives / detected if detected else 0.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 0.0


def runtime_overhead(protected_seconds: float, plain_seconds: float) -> float:
    """The paper's overhead metric: ``protected / plain - 1``."""
    if plain_seconds <= 0:
        raise ConfigurationError(
            f"baseline runtime must be positive, got {plain_seconds}"
        )
    return protected_seconds / plain_seconds - 1.0


def mean(values: Sequence[float] | Iterable[float]) -> float:
    """Arithmetic mean (errors on empty input rather than returning NaN)."""
    values = list(values)
    if not values:
        raise ConfigurationError("cannot average an empty sequence")
    return sum(values) / len(values)


def success_rate(outcomes: Iterable[bool]) -> float:
    """Fraction of True outcomes (the paper's PCG success metric)."""
    outcomes = list(outcomes)
    if not outcomes:
        raise ConfigurationError("cannot compute a rate over zero runs")
    return sum(outcomes) / len(outcomes)


def relative_reduction(ours: float, baseline: float) -> float:
    """``1 - ours/baseline`` — the paper's "reduced by X %" comparisons."""
    if baseline == 0:
        raise ConfigurationError("baseline must be non-zero")
    return 1.0 - ours / baseline


def improvement_factor(ours: float, baseline: float) -> float:
    """``ours / baseline`` — the paper's "N times more" comparisons."""
    if baseline == 0:
        raise ConfigurationError("baseline must be non-zero")
    return ours / baseline
