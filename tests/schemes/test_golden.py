"""Differential golden tests for the scheme refactor.

Every built-in scheme replays a seeded corpus — one clean run and one
single-burst run — and must match the pre-refactor snapshots under
``golden/`` bit for bit: values (as float hex), detections, corrections,
block bookkeeping, simulated seconds, and flops.  A mismatch means the
registry migration changed the numerics or the cost model of a scheme.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import AbftConfig
from repro.machine import Machine
from repro.schemes import BUILTIN_SCHEMES, make_scheme
from repro.sparse import random_spd

GOLDEN = Path(__file__).parent / "golden"

#: Corpus parameters baked into the committed snapshots — do not change
#: without regenerating every file under golden/.
N, NNZ, MATRIX_SEED, RHS_SEED = 96, 900, 7, 123
BLOCK_SIZE = 16
BURST_INDEX, BURST_MAGNITUDE = 33, 1e4


@pytest.fixture(scope="module")
def corpus():
    matrix = random_spd(N, NNZ, seed=MATRIX_SEED)
    b = np.random.default_rng(RHS_SEED).standard_normal(N)
    return matrix, b


def one_shot_burst():
    state = {"armed": True}

    def hook(stage, data, work):
        if stage == "result" and state["armed"]:
            data[BURST_INDEX] += BURST_MAGNITUDE
            state["armed"] = False

    return hook


def test_snapshot_corpus_is_complete():
    expected = {
        f"{name}_{scenario}.json"
        for name in BUILTIN_SCHEMES
        for scenario in ("clean", "burst")
    }
    assert {p.name for p in GOLDEN.glob("*.json")} == expected


@pytest.mark.parametrize("scenario", ("clean", "burst"))
@pytest.mark.parametrize("name", BUILTIN_SCHEMES)
def test_scheme_matches_golden_snapshot(corpus, name, scenario):
    matrix, b = corpus
    golden = json.loads((GOLDEN / f"{name}_{scenario}.json").read_text())
    scheme = make_scheme(
        name, matrix, config=AbftConfig(block_size=BLOCK_SIZE), machine=Machine()
    )
    tamper = one_shot_burst() if scenario == "burst" else None
    result = scheme.multiply(b.copy(), tamper=tamper)

    assert [float(v).hex() for v in result.value] == golden["value"]
    assert [bool(d) for d in result.detections] == golden["detections"]
    assert [[int(s), int(e)] for s, e in result.corrections] == golden["corrections"]
    assert [
        [int(block) for block in blocks] for blocks in result.detected_blocks
    ] == golden["detected_blocks"]
    assert [int(block) for block in result.corrected_blocks] == golden[
        "corrected_blocks"
    ]
    assert result.rounds == golden["rounds"]
    assert float(result.seconds).hex() == golden["seconds"]
    assert float(result.flops) == golden["flops"]
    assert bool(result.exhausted) is golden["exhausted"]
