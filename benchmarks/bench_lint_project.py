"""Cold vs. incremental project-analysis time for reprolint.

The project engine's promise is that a warm run — content hashes
unchanged, cache intact — skips parsing and summary extraction for every
file and only re-links.  This harness times three scenarios over the
repo's own ``src/`` tree:

* ``cold``        — empty cache: every file parsed and summarized;
* ``warm``        — second run over the same tree: every file a cache hit;
* ``incremental`` — one leaf file's content changed: that file plus its
  reverse-import dependents re-analyzed, the rest served from cache.

Assertions are about *work*, not wall-clock (CI boxes are noisy): the
warm run must re-analyze zero files and the incremental run strictly
fewer than the cold run.  The JSON written to
``results/BENCH_lint_project.json`` additionally records the timings so
future engine changes have a perf trajectory to compare against.
"""

import shutil
import time
from pathlib import Path

from benchmarks.conftest import bench_env, write_json, write_result
from repro.lint import analyze_project

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
REPEATS = 3

#: The leaf edited for the incremental scenario (imported by the perf
#: backends, so its dependents — not the whole tree — must re-analyze).
EDIT_TARGET = Path("repro") / "perf" / "shm.py"


def _timed_run(tree: Path, cache: Path):
    start = time.perf_counter()
    result = analyze_project([tree], cache_path=cache, base=tree.parent)
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_cold_vs_incremental_analysis(tmp_path):
    tree = tmp_path / "src"
    shutil.copytree(SRC, tree)
    cache = tmp_path / ".reprolint-cache.json"

    scenarios = {}

    cold_times = []
    for repeat in range(REPEATS):
        if cache.exists():
            cache.unlink()
        result, elapsed = _timed_run(tree, cache)
        cold_times.append(elapsed)
    scenarios["cold"] = {
        "seconds": min(cold_times),
        "files_checked": result.files_checked,
        "cache_hits": result.cache_hits,
        "reanalyzed": result.reanalyzed,
    }
    assert result.cache_hits == 0
    assert result.reanalyzed == result.files_checked

    warm_times = []
    for repeat in range(REPEATS):
        result, elapsed = _timed_run(tree, cache)
        warm_times.append(elapsed)
    scenarios["warm"] = {
        "seconds": min(warm_times),
        "files_checked": result.files_checked,
        "cache_hits": result.cache_hits,
        "reanalyzed": result.reanalyzed,
    }
    assert result.reanalyzed == 0
    assert result.cache_hits == result.files_checked

    target = tree / EDIT_TARGET
    incremental_times = []
    for repeat in range(REPEATS):
        target.write_text(
            target.read_text(encoding="utf-8") + f"\n# edit {repeat}\n",
            encoding="utf-8",
        )
        result, elapsed = _timed_run(tree, cache)
        incremental_times.append(elapsed)
    scenarios["incremental"] = {
        "seconds": min(incremental_times),
        "files_checked": result.files_checked,
        "cache_hits": result.cache_hits,
        "reanalyzed": result.reanalyzed,
        "edited": EDIT_TARGET.as_posix(),
    }
    assert 0 < result.reanalyzed < result.files_checked
    assert result.cache_hits + result.reanalyzed == result.files_checked

    payload = {
        "benchmark": "lint_project",
        "config": {"repeats": REPEATS, "tree": "src"},
        "env": bench_env(),
        "scenarios": scenarios,
        "asserted": {
            "warm_reanalyzes_nothing": True,
            "incremental_reanalyzes_subset": True,
        },
    }
    write_json("lint_project", payload)

    lines = ["scenario      seconds  files  hits  reanalyzed"]
    for name, stats in scenarios.items():
        lines.append(
            f"{name:<12} {stats['seconds']:>8.3f}  {stats['files_checked']:>5}"
            f"  {stats['cache_hits']:>4}  {stats['reanalyzed']:>10}"
        )
    write_result("bench_lint_project", "\n".join(lines))
