"""Block-ABFT error detection with implicit localization (Section III-B).

The detector evaluates the per-block checksum invariant
``w_k^T (A_k b) ≈ (w_k^T A_k) b`` and returns the set of blocks whose
syndrome exceeds the rounding-error bound.  Because a flagged block *is*
the error location, no separate localization phase exists — the property
the paper's runtime advantage rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.blocking import BlockPartition
from repro.core.bounds import Bound, make_bound
from repro.core.checksum import ChecksumMatrix
from repro.core.config import AbftConfig
from repro.core.dtypes import DtypePolicy, resolve_dtype_policy
from repro.errors import ShapeMismatchError
from repro.kernels import resolve_kernels
from repro.obs import Telemetry, resolve_telemetry
from repro.machine import (
    KernelCost,
    TaskGraph,
    blocked_checksum_cost,
    checksum_matvec_cost,
    norm_cost,
    spmv_cost,
)
from repro.sparse.csr import CsrMatrix


@dataclass(frozen=True)
class DetectionReport:
    """Outcome of one invariant evaluation.

    Attributes:
        flagged: indices of blocks whose syndrome exceeds the bound —
            both the error indication and the error location.
        syndrome: per-block ``t1_k - t2_k`` (for the blocks checked).
        thresholds: per-block bounds the syndromes were compared against.
        blocks: the block indices checked (all blocks on a full detect).
        beta: the operand norm used by the bound.
    """

    flagged: np.ndarray
    syndrome: np.ndarray
    thresholds: np.ndarray
    blocks: np.ndarray
    beta: float

    @property
    def clean(self) -> bool:
        """True when no block was flagged."""
        return self.flagged.size == 0


@dataclass(frozen=True)
class NearMiss:
    """A clean block whose syndrome ran close to its bound.

    Emitted to the detector's near-miss hook when ``|syndrome| >=
    near_miss_fraction * threshold`` for a block that was *not* flagged —
    the false-positive pressure signal adaptive-threshold policies need.

    Attributes:
        block: index of the near-miss block.
        margin: ``|syndrome| / threshold`` (in [near_miss_fraction, 1)).
        syndrome: the block's raw syndrome ``t1_k - t2_k``.
        threshold: the bound the syndrome was compared against.
        beta: the operand norm the bound used.
    """

    block: int
    margin: float
    syndrome: float
    threshold: float
    beta: float


#: Callback type of the detector's near-miss hook.
NearMissHook = Callable[[NearMiss], None]

#: Callback type of the detector's report hook: receives every
#: evaluation's :class:`DetectionReport` plus the per-position exceeded
#: mask (aligned with ``report.blocks``).  Adaptive-threshold schemes
#: use it to learn the clean-syndrome distribution online.
ReportHook = Callable[[DetectionReport, np.ndarray], None]


class BlockAbftDetector:
    """Detector bound to one input matrix (the reusable, per-matrix part).

    Building the detector performs the one-time preprocessing of Figures
    2-3 (checksum matrix ``C`` plus bound constants); its cost is recorded
    in :attr:`setup_cost` and is *not* charged to individual multiplies,
    matching the paper's treatment of setup as amortized preprocessing.
    """

    def __init__(
        self,
        matrix: CsrMatrix,
        config: AbftConfig | None = None,
        bound_override: Bound | None = None,
        telemetry: object = None,
        near_miss_hook: Optional[NearMissHook] = None,
        dtype: object = None,
        report_hook: Optional[ReportHook] = None,
    ) -> None:
        """Args:
            matrix: the input matrix to protect.
            config: scheme parameters.
            bound_override: any object exposing ``thresholds(beta, blocks)``
                (e.g. :class:`repro.core.calibration.EmpiricalBound`);
                replaces the config-selected analytical bound.
            telemetry: :mod:`repro.obs` selection — a
                :class:`~repro.obs.Telemetry` instance or exporter name;
                None resolves ``config.telemetry`` (``REPRO_OBS`` env
                override applies to names).
            near_miss_hook: called with a :class:`NearMiss` for every
                clean block whose syndrome margin reaches
                ``config.near_miss_fraction`` of its bound; fires
                regardless of whether telemetry is enabled.
            dtype: dtype-policy selection (name or
                :class:`~repro.core.dtypes.DtypePolicy`); None resolves
                ``config.dtype`` (``REPRO_DTYPE`` env override applies).
                The policy supplies the unit roundoff the analytical
                bound assumes for the matrix's storage dtype.
            report_hook: called with every evaluation's
                :class:`DetectionReport` and exceeded mask; the feedback
                channel of adaptive-threshold schemes (``vabft``).
        """
        self.matrix = matrix
        self.config = config or AbftConfig()
        self.telemetry: Telemetry = resolve_telemetry(
            telemetry if telemetry is not None else self.config.telemetry
        )
        self.near_miss_hook = near_miss_hook
        self.report_hook = report_hook
        self.dtype_policy: DtypePolicy = resolve_dtype_policy(
            self.config.dtype, dtype
        )
        self.epsilon = self.dtype_policy.epsilon_for(matrix.dtype)
        self.kernels = self.telemetry.wrap_kernels(resolve_kernels(self.config.kernel))
        self.checksum = ChecksumMatrix.build(
            matrix,
            self.config.block_size,
            self.config.weights,
            kernel=self.kernels,
            telemetry=self.telemetry,
        )
        if self.telemetry.enabled:
            self.telemetry.gauge("abft.n_blocks", self.checksum.n_blocks)
        self.bound: Bound
        if bound_override is not None:
            self.bound = bound_override
        else:
            self.bound = make_bound(
                self.config.bound,
                self.checksum,
                self.config.bound_scale,
                epsilon=self.epsilon,
            )

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def partition(self) -> BlockPartition:
        return self.checksum.partition

    @property
    def n_blocks(self) -> int:
        return self.checksum.n_blocks

    @property
    def setup_cost(self) -> KernelCost:
        return self.checksum.setup_cost

    # ------------------------------------------------------------------
    # Numerics
    # ------------------------------------------------------------------
    def operand_checksums(self, b: np.ndarray) -> np.ndarray:
        """t1 = C b."""
        return self.checksum.operand_checksums(b)

    def result_checksums(self, r: np.ndarray) -> np.ndarray:
        """t2 over all blocks."""
        if r.shape != (self.matrix.n_rows,):
            raise ShapeMismatchError(
                f"result has shape {r.shape}, expected ({self.matrix.n_rows},)"
            )
        return self.checksum.result_checksums(r, kernel=self.kernels)

    def operand_norm(self, b: np.ndarray) -> float:
        """beta = ||b||_2 (overflow on corrupted operands propagates as inf)."""
        with np.errstate(over="ignore", invalid="ignore"):
            return float(np.linalg.norm(b))

    def compare(
        self,
        t1: np.ndarray,
        t2: np.ndarray,
        beta: float,
        blocks: np.ndarray | None = None,
    ) -> DetectionReport:
        """Evaluate the invariant for the given checksums.

        Args:
            t1: operand checksums for the checked blocks.
            t2: result checksums for the checked blocks.
            beta: operand norm.
            blocks: block indices being checked; defaults to all blocks.

        A non-finite syndrome always flags (an inf/NaN in the result makes
        the invariant trivially violated); a non-finite *threshold* (e.g. a
        corrupted beta) behaves exactly like the comparison hardware would —
        comparisons against NaN are false, so errors can slip through, which
        is part of the modeled vulnerability of detection operations.
        """
        if blocks is None:
            blocks = np.arange(self.n_blocks, dtype=np.int64)
        else:
            blocks = np.asarray(blocks, dtype=np.int64)
        with np.errstate(invalid="ignore", over="ignore"):
            thresholds = self.bound.thresholds(beta, blocks)
        syndrome, exceeded = self.kernels.compare_syndromes(t1, t2, thresholds)
        report = DetectionReport(
            flagged=blocks[exceeded],
            syndrome=syndrome,
            thresholds=thresholds,
            blocks=blocks,
            beta=beta,
        )
        if (
            self.telemetry.enabled
            or self.near_miss_hook is not None
            or self.report_hook is not None
        ):
            self._record_report(report, exceeded)
        return report

    def record(self, report: DetectionReport, exceeded: np.ndarray) -> None:
        """Record a report built outside :meth:`compare` (planned paths).

        :class:`repro.perf.ProtectedPlan` evaluates the invariant in its
        own preallocated buffers and hands the outcome here so telemetry
        and the hooks observe exactly what :meth:`compare` would have
        emitted.  No-op when none is active.
        """
        if (
            self.telemetry.enabled
            or self.near_miss_hook is not None
            or self.report_hook is not None
        ):
            self._record_report(report, exceeded)

    def _record_report(self, report: DetectionReport, exceeded: np.ndarray) -> None:
        """Telemetry + near-miss side channel of one invariant evaluation.

        Emits the per-block ``abft.syndrome_margin`` histogram (margin =
        ``|syndrome| / threshold``), the check/detection counters, and —
        for clean blocks whose margin reaches the configured near-miss
        fraction — bumps ``abft.false_positive_candidates`` and invokes
        the near-miss hook.  The report hook (when set) sees every
        evaluation first, before any filtering.
        """
        observer = self.report_hook
        if observer is not None:
            observer(report, exceeded)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            margins = np.abs(report.syndrome) / report.thresholds
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.count("abft.checks", blocks=int(report.blocks.size))
            if report.flagged.size:
                telemetry.count("abft.detections")
                telemetry.count("abft.blocks_flagged", float(report.flagged.size))
            telemetry.observe_many("abft.syndrome_margin", margins)
        fraction = self.config.near_miss_fraction
        with np.errstate(invalid="ignore"):
            near = ~exceeded & np.isfinite(margins) & (margins >= fraction)
        if not near.any():
            return
        if telemetry.enabled:
            telemetry.count(
                "abft.false_positive_candidates", float(np.count_nonzero(near))
            )
        hook = self.near_miss_hook
        if hook is not None:
            for position in np.flatnonzero(near):
                hook(
                    NearMiss(
                        block=int(report.blocks[position]),
                        margin=float(margins[position]),
                        syndrome=float(report.syndrome[position]),
                        threshold=float(report.thresholds[position]),
                        beta=report.beta,
                    )
                )

    def detect(self, b: np.ndarray, r: np.ndarray) -> DetectionReport:
        """Full detection pass: checksums, norm, syndrome, comparison."""
        t1 = self.operand_checksums(b)
        t2 = self.result_checksums(r)
        return self.compare(t1, t2, self.operand_norm(b))

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def detection_graph(self, include_spmv: bool = True) -> TaskGraph:
        """Task graph of one protected SpMV (the paper's Figure 1).

        The first parallel region runs the SpMV, the operand checksum
        ``t1 = C b`` and the operand norm ``beta`` on concurrent streams
        (``beta`` depends only on ``b``, so it joins the first region even
        though the figure draws it in the second row).  Everything after —
        result checksums, syndrome, per-block bound, comparison, flag copy
        — fuses into one on-device kernel; no blocking scalar round trip
        is required, which is the scheme's latency advantage over the
        dense check.
        """
        matrix = self.matrix
        checksum = self.checksum.matrix
        graph = TaskGraph()
        max_row = int(matrix.row_lengths().max(initial=1))
        max_c_row = int(checksum.row_lengths().max(initial=1))
        step1 = []
        if include_spmv:
            cost = spmv_cost(matrix.nnz, max_row)
            graph.add("spmv", cost.work, cost.span)
            step1.append("spmv")
        cost = checksum_matvec_cost(checksum.nnz, max_c_row)
        graph.add("t1", cost.work, cost.span)
        step1.append("t1")
        cost = norm_cost(matrix.n_cols)
        graph.add("beta", cost.work, cost.span)
        step1.append("beta")
        cost = blocked_checksum_cost(
            matrix.n_rows, self.config.block_size, self.n_blocks
        )
        graph.add("check", cost.work, cost.span, deps=step1)
        return graph
