"""Rule interface and the built-in ABFT rule pack."""

from repro.lint.rules.abft import (
    ABFT_RULES,
    BroadExceptRule,
    ChecksumRefreshRule,
    DtypeDowncastRule,
    ExactFloatCompareRule,
    Float64LiteralRule,
    MissingValidationRule,
    ReductionOrderRule,
    SchemeConstructionRule,
    TelemetryGuardRule,
)
from repro.lint.rules.base import LintRule, ModuleContext

__all__ = [
    "LintRule",
    "ModuleContext",
    "ABFT_RULES",
    "ChecksumRefreshRule",
    "ReductionOrderRule",
    "ExactFloatCompareRule",
    "DtypeDowncastRule",
    "Float64LiteralRule",
    "BroadExceptRule",
    "MissingValidationRule",
    "SchemeConstructionRule",
    "TelemetryGuardRule",
]
