"""True-multicore plan backend: a persistent shared-memory worker pool.

The ``"threads"`` backend cannot beat the GIL: the per-shard fan-out is
Python-level, so only the NumPy inner loops overlap.  This backend runs
one OS *process* per shard instead.  At plan construction the parent
builds every buffer the fused pipeline touches — the CSR triplets of
``A`` and the checksum matrix, the weight vector, the operand slot, all
output/scratch arrays and a small result ring — into one
:class:`~repro.perf.shm.Arena`.  Workers attach lazily on the first
above-cutoff multiply, rebuild the identical
:class:`~repro.perf.plan.FusedShardBuffers` over zero-copy views, and
then serve ``detect``/``correct`` commands over a pipe; the only
per-multiply traffic is the operand copy (parent side) and a few control
bytes.

Correctness and failure semantics:

* **bit-identity** — workers run the very same
  :meth:`~repro.perf.plan.FusedShardBuffers.detect_shard` /
  :meth:`~repro.perf.plan.FusedShardBuffers.correct_shard` code over the
  very same bytes, so results match the serial path bit for bit (the
  cross-backend differential matrix pins this);
* **publication** — a worker bumps its slot in the shared ``ring`` to
  the command generation *after* writing its output slices and before
  acking; the parent cross-checks the ring so a stale ack can never pass
  for a fresh result;
* **failure** — a dead worker surfaces as
  :class:`~repro.errors.WorkerCrashError`, a silent one as
  :class:`~repro.errors.WorkerTimeoutError` (never a hang), and an
  in-worker exception as :class:`~repro.errors.ParallelBackendError`
  carrying the remote traceback.  After a crash/timeout the pool is
  reaped and respawned lazily on the next multiply; the arena stays
  mapped (plan buffers alias it) until :meth:`ProcessBackend.close`
  or the atexit sweep unlinks it.

Telemetry crosses the process border as registry *deltas*: when the
parent's telemetry is enabled, each command carries an observe flag, the
worker records real ``plan.shard`` spans and ``kernel.<op>.seconds``
timings into a local :class:`~repro.obs.pipeline.WorkerRecorder`, and the
``ok`` ack piggybacks the delta (counter increments, histogram bucket
deltas) back over the result pipe.  The parent merges the deltas in
ascending worker order after the barrier — never in wall-clock answer
order — so merged aggregates and event streams stay deterministic.  A
crashed or timed out worker loses at most its in-flight delta (nothing
already merged is recounted), and a respawned worker starts from a fresh
baseline.  Per-shard wall times additionally live in the arena's
``shard_seconds`` field for diagnostics
(:meth:`ProcessBackend.last_shard_seconds`).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
import traceback
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.blocking import BlockPartition
from repro.errors import (
    ConfigurationError,
    ParallelBackendError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.obs.instruments import DEFAULT_TIME_BUCKETS
from repro.perf.backends import Owned, PlanBackend
from repro.perf.shm import Arena, ArenaLayout
from repro.sparse.csr import CsrMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotations only)
    from multiprocessing.connection import Connection
    from multiprocessing.context import BaseContext
    from multiprocessing.process import BaseProcess

    from repro.obs import Telemetry
    from repro.obs.pipeline import WorkerRecorder
    from repro.perf.plan import ProtectedPlan, ShardCorrection

#: Environment variable selecting the multiprocessing start method.
START_METHOD_ENV_VAR = "REPRO_PROCESS_START"

#: Environment variable overriding the per-command worker timeout (seconds).
TIMEOUT_ENV_VAR = "REPRO_PROCESS_TIMEOUT"

#: Default per-command timeout: generous, because it only bounds *hangs* —
#: healthy workers answer in milliseconds.
DEFAULT_TIMEOUT = 60.0

#: Below this much work (``nnz(A) + n_rows + nnz(C)``) process fan-out
#: costs more than it saves and the backend stays dormant (serial path).
#: Matches :data:`repro.kernels.parallel.DEFAULT_SERIAL_CUTOFF`.
DEFAULT_SERIAL_CUTOFF = 1 << 15

_POLL_INTERVAL = 0.02


def default_start_method() -> str:
    """``fork`` where available (fast, inherits the arena fd), else spawn.

    Overridable via :data:`START_METHOD_ENV_VAR` for debugging spawn
    semantics on fork platforms.
    """
    methods = multiprocessing.get_all_start_methods()
    env = os.environ.get(START_METHOD_ENV_VAR)
    if env:
        if env not in methods:
            raise ConfigurationError(
                f"{START_METHOD_ENV_VAR}={env!r} is not a supported start "
                f"method; expected one of {tuple(methods)}"
            )
        return env
    return "fork" if "fork" in methods else "spawn"


def default_timeout() -> float:
    """Per-command timeout in seconds (:data:`TIMEOUT_ENV_VAR` override)."""
    env = os.environ.get(TIMEOUT_ENV_VAR)
    if env is None:
        return DEFAULT_TIMEOUT
    try:
        value = float(env)
    except ValueError:
        raise ConfigurationError(
            f"{TIMEOUT_ENV_VAR}={env!r} is not a valid timeout in seconds"
        ) from None
    if not value > 0:
        raise ConfigurationError(
            f"{TIMEOUT_ENV_VAR} must be positive, got {value!r}"
        )
    return value


# ----------------------------------------------------------------------
# Shared layout + worker-side reconstruction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to rebuild the plan state (picklable)."""

    layout: ArenaLayout
    shape: Tuple[int, int]
    checksum_shape: Tuple[int, int]
    block_size: int
    block_cuts: np.ndarray
    n_shards: int


def plan_arena_layout(
    matrix: CsrMatrix, checksum: CsrMatrix, n_blocks: int, n_shards: int
) -> ArenaLayout:
    """Declare the one-arena layout for a plan over ``matrix``.

    Field names match the ``alloc`` names used by
    :class:`~repro.perf.plan.FusedShardBuffers`, plus the static CSR
    triplets, the operand slot ``b``, the result ring and the per-shard
    wall-clock diagnostics.  Working fields (matrix data, operand,
    result, product scratch) are sized by the matrix storage dtype —
    a float32 plan's arena is roughly half the float64 footprint —
    while every checksum-side field stays in the accumulation dtype.
    """
    working = str(matrix.data.dtype)
    return ArenaLayout.build(
        [
            ("a_indptr", (matrix.n_rows + 1,), "int64"),
            ("a_indices", (matrix.nnz,), "int64"),
            ("a_data", (matrix.nnz,), working),
            ("c_indptr", (checksum.n_rows + 1,), "int64"),
            ("c_indices", (checksum.nnz,), "int64"),
            ("c_data", (checksum.nnz,), str(checksum.data.dtype)),
            ("weights", (matrix.n_rows,), "float64"),
            ("b", (matrix.n_cols,), working),
            ("r", (matrix.n_rows,), working),
            ("r_workspace", (matrix.nnz,), working),
            ("t1", (n_blocks,), "float64"),
            ("c_workspace", (checksum.nnz,), "float64"),
            ("t2", (n_blocks,), "float64"),
            ("t2_workspace", (matrix.n_rows,), "float64"),
            ("syndrome", (n_blocks,), "float64"),
            ("thresholds", (n_blocks,), "float64"),
            ("exceeded", (n_blocks,), "bool"),
            ("ring", (n_shards,), "int64"),
            ("shard_seconds", (n_shards,), "float64"),
        ]
    )


def _arena_alloc(arena: Arena):  # type: ignore[no-untyped-def]
    """``alloc`` hook resolving plan buffers to arena views."""

    def alloc(name: str, shape: Tuple[int, ...], dtype: str) -> np.ndarray:
        view = arena.array(name)
        if view.shape != tuple(shape) or view.dtype != np.dtype(dtype):
            raise ConfigurationError(
                f"arena field {name!r} is {view.dtype}{view.shape}, "
                f"plan expects {dtype}{tuple(shape)}"
            )
        return view

    return alloc


def _fused_from_arena(arena: Arena, spec: WorkerSpec):  # type: ignore[no-untyped-def]
    """Rebuild the plan's :class:`FusedShardBuffers` over arena views.

    ``np.ascontiguousarray`` inside :class:`CsrMatrix` is a no-op on the
    already-conforming views, so the reconstruction is zero-copy.
    """
    from repro.perf.plan import FusedShardBuffers

    matrix = CsrMatrix(
        spec.shape,
        arena.array("a_indptr"),
        arena.array("a_indices"),
        arena.array("a_data"),
    )
    checksum = CsrMatrix(
        spec.checksum_shape,
        arena.array("c_indptr"),
        arena.array("c_indices"),
        arena.array("c_data"),
    )
    partition = BlockPartition(n_rows=spec.shape[0], block_size=spec.block_size)
    return FusedShardBuffers(
        matrix,
        checksum,
        partition,
        arena.array("weights"),
        np.asarray(spec.block_cuts, dtype=np.int64),
        alloc=_arena_alloc(arena),
    )


def _worker_main(worker_id: int, conn: "Connection", arena_name: str, spec: WorkerSpec) -> None:
    """Worker loop: attach, rebuild, then serve commands until ``stop``.

    Outputs go to the worker's disjoint arena slices; the ring slot is
    bumped to the command generation *before* the ack so the parent can
    verify publication.  Exceptions are marshalled back as tracebacks —
    the loop survives them, keeping the pool healthy.

    When a command's observe flag is set, a lazily created
    :class:`~repro.obs.pipeline.WorkerRecorder` wraps the fused kernels
    and records a real ``plan.shard`` span; the registry delta since the
    previous ack rides back as the fourth ack element (``None`` when
    telemetry is off or nothing was recorded).
    """
    arena = Arena.attach(arena_name, spec.layout)
    recorder: Optional["WorkerRecorder"] = None
    try:
        fused = _fused_from_arena(arena, spec)
        plain_kernels = fused.kernels
        b = arena.array("b")
        ring = arena.array("ring")
        shard_seconds = arena.array("shard_seconds")
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            op = str(message[0])
            if op == "stop":
                break
            generation = int(message[1])
            try:
                want_obs = bool(message[-1])
                if want_obs and recorder is None:
                    from repro.obs.pipeline import WorkerRecorder

                    recorder = WorkerRecorder()
                    fused.kernels = recorder.telemetry.wrap_kernels(plain_kernels)
                started = time.perf_counter()
                payload: Optional["ShardCorrection"] = None
                if op == "detect":
                    if want_obs and recorder is not None:
                        with recorder.telemetry.span("plan.shard", shard=worker_id):
                            fused.detect_shard(worker_id, b)
                    else:
                        fused.detect_shard(worker_id, b)
                elif op == "correct":
                    blocks = message[2]
                    if want_obs and recorder is not None:
                        with recorder.telemetry.span(
                            "plan.shard", shard=worker_id, blocks=int(len(blocks))
                        ):
                            payload = fused.correct_shard(worker_id, b, blocks)
                    else:
                        payload = fused.correct_shard(worker_id, b, blocks)
                else:
                    raise ConfigurationError(f"unknown worker command {op!r}")
                elapsed = time.perf_counter() - started
                shard_seconds[worker_id] = elapsed
                delta = None
                if want_obs and recorder is not None:
                    telemetry = recorder.telemetry
                    if telemetry.enabled:
                        telemetry.observe(
                            f"kernel.{op}_shard.seconds",
                            elapsed,
                            buckets=DEFAULT_TIME_BUCKETS,
                            shard=worker_id,
                        )
                    delta = recorder.delta()
                ring[worker_id] = generation
                conn.send(("ok", generation, payload, delta))
            # reprolint: disable=ABFT005 -- marshalled across the process
            # border; the parent re-raises it as ParallelBackendError
            except BaseException:
                conn.send(("error", generation, traceback.format_exc()))
    finally:
        conn.close()
        arena.close()


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------
class _Worker:
    __slots__ = ("process", "conn")

    def __init__(self, process: "BaseProcess", conn: "Connection") -> None:
        self.process = process
        self.conn = conn


class ProcessPool:
    """One pipe-connected worker process per shard, bound to one arena."""

    def __init__(
        self,
        context: "BaseContext",
        arena: Arena,
        spec: WorkerSpec,
        timeout: float,
    ) -> None:
        self._context = context
        self._arena = arena
        self._spec = spec
        self._timeout = timeout
        self.workers: List[_Worker] = []

    def start(self) -> None:
        for worker_id in range(self._spec.n_shards):
            parent_conn, child_conn = self._context.Pipe(duplex=True)
            process = self._context.Process(
                target=_worker_main,
                args=(worker_id, child_conn, self._arena.name, self._spec),
                name=f"repro-shard-{worker_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self.workers.append(_Worker(process, parent_conn))

    @property
    def alive(self) -> bool:
        return bool(self.workers) and all(
            worker.process.is_alive() for worker in self.workers
        )

    def dispatch(
        self, generation: int, commands: Dict[int, Tuple[object, ...]]
    ) -> Dict[int, Tuple[object, object]]:
        """Send one command per targeted worker; gather all acks.

        Each ack unpacks to ``(payload, delta)`` — the shard result and
        the worker's telemetry delta (``None`` when telemetry is off).
        Raises the typed :class:`~repro.errors.ParallelBackendError`
        family on remote exceptions, dead workers or timeouts.  The
        caller is responsible for reaping the pool afterwards.
        """
        op = "command"
        for worker_id, command in commands.items():
            op = str(command[0])
            try:
                self.workers[worker_id].conn.send(command)
            except (BrokenPipeError, OSError) as exc:
                raise WorkerCrashError(
                    f"worker {worker_id} is gone before {op!r} could be sent: {exc}"
                ) from None
        deadline = time.monotonic() + self._timeout
        payloads: Dict[int, Tuple[object, object]] = {}
        for worker_id in sorted(commands):
            payloads[worker_id] = self._collect(worker_id, generation, op, deadline)
        return payloads

    def _collect(
        self, worker_id: int, generation: int, op: str, deadline: float
    ) -> Tuple[object, object]:
        worker = self.workers[worker_id]
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerTimeoutError(
                    f"worker {worker_id} did not answer {op!r} within "
                    f"{self._timeout:.1f}s"
                )
            try:
                ready = worker.conn.poll(min(_POLL_INTERVAL, remaining))
            except (EOFError, OSError):
                ready = False
            if ready:
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError) as exc:
                    raise WorkerCrashError(
                        f"worker {worker_id} died mid-answer during {op!r}: {exc}"
                    ) from None
                break
            if not worker.process.is_alive():
                raise WorkerCrashError(
                    f"worker {worker_id} (pid {worker.process.pid}) died during "
                    f"{op!r} (exitcode {worker.process.exitcode})"
                )
        if message[0] == "error":
            # The worker loop survives its own exceptions; the pool is
            # still healthy, so this is a plain ParallelBackendError.
            raise ParallelBackendError(
                f"worker {worker_id} raised during {op!r}:\n{message[2]}"
            )
        if message[0] != "ok" or int(message[1]) != generation or len(message) != 4:
            # Protocol corruption — treat like a crash so the pool is
            # retired rather than trusted with the next command.
            raise WorkerCrashError(
                f"worker {worker_id} answered out of sequence during {op!r}: "
                f"expected generation {generation}, got {message[:2]!r}"
            )
        return message[2], message[3]

    def stop(self, grace: float = 2.0) -> None:
        """Best-effort graceful shutdown, then terminate stragglers."""
        for worker in self.workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + grace
        for worker in self.workers:
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=grace)
            if worker.process.is_alive():  # pragma: no cover - last resort
                worker.process.kill()
                worker.process.join(timeout=grace)
            worker.conn.close()
            # Close the Process object's own pipe fds promptly.
            close = getattr(worker.process, "close", None)
            if close is not None:
                try:
                    close()
                except ValueError:  # pragma: no cover - still shutting down
                    pass
        self.workers = []


# ----------------------------------------------------------------------
# Backend
# ----------------------------------------------------------------------
_LIVE_BACKENDS: "weakref.WeakSet[ProcessBackend]" = weakref.WeakSet()
_ATEXIT_REGISTERED = False


def _register_for_atexit(backend: "ProcessBackend") -> None:
    global _ATEXIT_REGISTERED
    _LIVE_BACKENDS.add(backend)
    if not _ATEXIT_REGISTERED:
        atexit.register(shutdown_all_process_backends)
        _ATEXIT_REGISTERED = True


def shutdown_all_process_backends() -> None:
    """Close every live process backend (worker pools + arenas).

    Runs automatically at interpreter exit; callable from tests that
    must assert no SharedMemory segment outlives its plan.
    """
    for backend in list(_LIVE_BACKENDS):
        backend.close()


class ProcessBackend(PlanBackend):
    """Plan backend executing fused shard tasks on worker processes.

    Args:
        plan: the owning :class:`~repro.perf.plan.ProtectedPlan`.
        timeout: per-command answer deadline in seconds
            (default :func:`default_timeout`).
        serial_cutoff: minimum plan work (``nnz(A) + n_rows + nnz(C)``)
            before processes engage; below it the backend stays dormant
            and the plan runs the sequential path on heap buffers.  Pass
            ``0`` to force engagement (tests, benchmarks).
        start_method: multiprocessing start method (default
            :func:`default_start_method`).

    Workers are spawned lazily on the first parallel multiply and
    respawned after a crash; :meth:`close` (or the atexit sweep) retires
    the pool and unlinks the shared-memory arena.
    """

    name = "processes"

    def __init__(
        self,
        plan: "ProtectedPlan",
        timeout: Optional[float] = None,
        serial_cutoff: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        super().__init__(plan)
        if timeout is None:
            timeout = default_timeout()
        elif not float(timeout) > 0:
            raise ConfigurationError(f"timeout must be positive, got {timeout!r}")
        if serial_cutoff is None:
            serial_cutoff = DEFAULT_SERIAL_CUTOFF
        elif int(serial_cutoff) < 0:
            raise ConfigurationError(
                f"serial_cutoff must be >= 0, got {serial_cutoff!r}"
            )
        self._timeout = float(timeout)
        self._serial_cutoff = int(serial_cutoff)
        if start_method is None:
            start_method = default_start_method()
        elif start_method not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                f"start_method {start_method!r} is not supported here; expected "
                f"one of {tuple(multiprocessing.get_all_start_methods())}"
            )
        self._start_method = start_method

        detector = plan.operator.detector
        matrix = detector.matrix
        checksum = detector.checksum.matrix
        n_shards = int(plan.block_cuts.size - 1)
        work = matrix.nnz + matrix.n_rows + checksum.nnz
        self._active = n_shards > 1 and work >= self._serial_cutoff
        self._generation = 0
        self._closed = False
        self._pool: Optional[ProcessPool] = None
        self._arena: Optional[Arena] = None
        self._spec: Optional[WorkerSpec] = None
        if not self._active:
            return

        layout = plan_arena_layout(matrix, checksum, detector.partition.n_blocks, n_shards)
        self._arena = Arena.create(layout)
        np.copyto(self._arena.array("a_indptr"), matrix.indptr)
        np.copyto(self._arena.array("a_indices"), matrix.indices)
        np.copyto(self._arena.array("a_data"), matrix.data)
        np.copyto(self._arena.array("c_indptr"), checksum.indptr)
        np.copyto(self._arena.array("c_indices"), checksum.indices)
        np.copyto(self._arena.array("c_data"), checksum.data)
        np.copyto(self._arena.array("weights"), detector.checksum.weights)
        self._arena.array("ring")[:] = 0
        self._arena.array("shard_seconds")[:] = 0.0
        self._spec = WorkerSpec(
            layout=layout,
            shape=matrix.shape,
            checksum_shape=checksum.shape,
            block_size=detector.partition.block_size,
            block_cuts=np.asarray(plan.block_cuts, dtype=np.int64),
            n_shards=n_shards,
        )
        _register_for_atexit(self)

    # ------------------------------------------------------------------
    # PlanBackend interface
    # ------------------------------------------------------------------
    @property
    def parallel_active(self) -> bool:
        return self._active and not self._closed

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def arena_name(self) -> Optional[str]:
        """SharedMemory segment name (``None`` when dormant or closed)."""
        if self._arena is None or self._arena.closed:
            return None
        return self._arena.name

    def alloc(self, name: str, shape: Tuple[int, ...], dtype: str) -> np.ndarray:
        if self._arena is None:
            return super().alloc(name, shape, dtype)
        return _arena_alloc(self._arena)(name, shape, dtype)

    def run_detect(self, b: np.ndarray, telemetry: "Telemetry") -> None:
        assert self._arena is not None and self._spec is not None
        pool = self._ensure_pool()
        np.copyto(self._arena.array("b"), b)
        generation = self._next_generation()
        want_obs = telemetry.enabled
        commands: Dict[int, Tuple[object, ...]] = {
            worker_id: ("detect", generation, want_obs)
            for worker_id in range(self._spec.n_shards)
        }
        replies = self._dispatch(pool, generation, commands)
        self._merge_worker_deltas(telemetry, replies)

    def run_correct(
        self, b: np.ndarray, owned: Owned, telemetry: "Telemetry"
    ) -> List["ShardCorrection"]:
        assert self._arena is not None
        pool = self._ensure_pool()
        np.copyto(self._arena.array("b"), b)
        generation = self._next_generation()
        want_obs = telemetry.enabled
        commands: Dict[int, Tuple[object, ...]] = {
            shard_id: (
                "correct",
                generation,
                np.ascontiguousarray(blocks, dtype=np.int64),
                want_obs,
            )
            for shard_id, blocks in owned
        }
        replies = self._dispatch(pool, generation, commands)
        self._merge_worker_deltas(telemetry, replies)
        results: List["ShardCorrection"] = []
        for shard_id, _blocks in owned:
            results.append(replies[shard_id][0])  # type: ignore[arg-type]
        return results

    def close(self) -> None:
        """Stop workers and unlink the arena.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._active = False
        if self._pool is not None:
            self._pool.stop()
            self._pool = None
        if self._arena is not None:
            self._arena.close()
        _LIVE_BACKENDS.discard(self)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def last_shard_seconds(self) -> np.ndarray:
        """Per-shard wall-clock of the last command (copy; diagnostics)."""
        if self._arena is None or self._arena.closed:
            raise ParallelBackendError("no live arena to read shard timings from")
        return self._arena.array("shard_seconds").copy()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _next_generation(self) -> int:
        self._generation += 1
        return self._generation

    def _ensure_pool(self) -> ProcessPool:
        if self._closed:
            raise ParallelBackendError("process backend is closed")
        assert self._arena is not None and self._spec is not None
        if self._pool is not None and not self._pool.alive:
            # A silent respawn would hide the fault; surface it once and
            # let the *next* multiply rebuild the pool.
            self._reap()
            raise WorkerCrashError(
                "a pool worker died since the last command; the pool has "
                "been retired and will respawn on the next multiply"
            )
        if self._pool is None:
            pool = ProcessPool(
                multiprocessing.get_context(self._start_method),
                self._arena,
                self._spec,
                self._timeout,
            )
            pool.start()
            self._pool = pool
        return self._pool

    def _merge_worker_deltas(
        self,
        telemetry: "Telemetry",
        replies: Dict[int, Tuple[object, object]],
    ) -> None:
        """Fold piggybacked worker deltas into the parent telemetry.

        Always in ascending worker id — never pipe-answer order — so the
        merged registry and the emitted ``delta`` events are identical
        run to run for a seeded workload.
        """
        if not telemetry.enabled:
            return
        from repro.obs.pipeline import RegistryDelta, merge_delta

        for worker_id in sorted(replies):
            delta: Optional[RegistryDelta] = replies[worker_id][1]  # type: ignore[assignment]
            merge_delta(telemetry, worker_id, delta)

    def _dispatch(
        self,
        pool: ProcessPool,
        generation: int,
        commands: Dict[int, Tuple[object, ...]],
    ) -> Dict[int, Tuple[object, object]]:
        try:
            payloads = pool.dispatch(generation, commands)
        except (WorkerCrashError, WorkerTimeoutError):
            # Dead or untrustworthy pool: retire it (lazy respawn later).
            # A marshalled in-worker exception is NOT reaped — the worker
            # loop survived it and the pool stays healthy.
            self._reap()
            raise
        assert self._arena is not None
        ring = self._arena.array("ring")
        for worker_id in commands:
            if int(ring[worker_id]) != generation:
                self._reap()
                raise ParallelBackendError(
                    f"worker {worker_id} acked generation {generation} without "
                    f"publishing it (ring={int(ring[worker_id])})"
                )
        return payloads

    def _reap(self) -> None:
        """Tear down a broken pool; the arena survives for respawn."""
        if self._pool is not None:
            self._pool.stop()
            self._pool = None
