"""Synthetic analogues of the paper's Table I benchmark suite.

The paper evaluates 25 square, symmetric, real, positive-definite matrices
from the Florida (SuiteSparse) collection.  Without network access the
originals cannot be fetched, so this module generates synthetic SPD
stand-ins that match each matrix's dimension ``N`` and nonzero count ``NNZ``
(and therefore its density and average row degree), using the locality-aware
generator :func:`repro.sparse.generators.random_spd`.

The four largest matrices are also offered at a *reduced scale* (same
average row degree, smaller ``N``) so that injection campaigns complete in
reasonable wall-clock time on a laptop; pass ``full_scale=True`` to get the
paper's dimensions.  DESIGN.md documents this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.sparse.csr import CsrMatrix
from repro.sparse.generators import random_spd


@dataclass(frozen=True)
class MatrixSpec:
    """Metadata for one Table I matrix.

    Attributes:
        name: SuiteSparse matrix name as printed in Table I.
        n: paper dimension (matrices are ``n`` x ``n``).
        nnz: paper nonzero count.
        reduced_n: dimension used when ``full_scale=False``; equals ``n``
            for all but the largest matrices.
        locality: off-diagonal spread passed to the generator as a fraction
            of ``n``; ``None`` (the default) derives it from the row degree
            so that rows within a checksum block share most of their
            columns, the way locally-numbered FEM meshes do.
    """

    name: str
    n: int
    nnz: int
    reduced_n: int
    locality: float | None = None

    def locality_at(self, n: int) -> float:
        """Band spread (fraction of ``n``) for a matrix of dimension ``n``.

        Defaults to a band of about 0.4 row degrees (minimum 6 columns) —
        dense rows then overlap heavily inside a 32-row block, keeping the
        checksum matrix small exactly where the paper's FEM matrices do.
        """
        if self.locality is not None:
            return self.locality
        spread = max(6.0, 0.4 * self.row_degree)
        return min(0.25, spread / n)

    @property
    def row_degree(self) -> float:
        """Average stored entries per row in the paper's matrix."""
        return self.nnz / self.n

    def nnz_at(self, n: int) -> int:
        """Target nnz preserving the paper's average row degree at size n."""
        return max(n, int(round(self.row_degree * n)))

    @property
    def zero_fraction(self) -> float:
        """Portion of zeros, as printed in Table I."""
        return 1.0 - self.nnz / (self.n * self.n)


#: Table I of the paper, ordered by increasing NNZ (the order used by
#: Figures 5-7).  ``reduced_n`` shrinks only the last six entries.
SUITE_SPECS: Sequence[MatrixSpec] = (
    MatrixSpec("nos3", 960, 15844, 960),
    MatrixSpec("bcsstk21", 3600, 26600, 3600),
    MatrixSpec("bcsstk11", 1473, 34241, 1473),
    MatrixSpec("ex3", 2410, 54840, 2410),
    MatrixSpec("ex10hs", 2548, 57308, 2548),
    MatrixSpec("nasa2146", 2146, 72250, 2146),
    MatrixSpec("sts4098", 4098, 72356, 4098),
    MatrixSpec("bcsstk13", 2003, 83883, 2003),
    MatrixSpec("msc04515", 4515, 97707, 4515),
    MatrixSpec("ex9", 3363, 99471, 3363),
    MatrixSpec("aft01", 8205, 125567, 8205),
    MatrixSpec("bodyy6", 19366, 134208, 9683),
    MatrixSpec("Muu", 7102, 170134, 7102),
    MatrixSpec("s3rmt3m3", 5357, 207123, 5357),
    MatrixSpec("s3rmt3m1", 5489, 217669, 5489),
    MatrixSpec("bcsstk28", 4410, 219024, 4410),
    MatrixSpec("s3rmq4m1", 5489, 262943, 5489),
    MatrixSpec("bcsstk16", 4884, 290378, 4884),
    MatrixSpec("bcsstk38", 8032, 355460, 8032),
    MatrixSpec("msc23052", 23052, 1142686, 7684),
    MatrixSpec("msc10848", 10848, 1229776, 5424),
    MatrixSpec("nd3k", 9000, 3279690, 3000),
    MatrixSpec("ship_001", 34920, 3896496, 8730),
    MatrixSpec("hood", 220542, 9895422, 13784),
    MatrixSpec("crankseg_1", 52804, 10614210, 6600),
)

_SPECS_BY_NAME = {spec.name: spec for spec in SUITE_SPECS}


def spec_for(name: str) -> MatrixSpec:
    """Look up a Table I spec by matrix name.

    Raises:
        ConfigurationError: if the name is not part of the suite.
    """
    try:
        return _SPECS_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_SPECS_BY_NAME))
        raise ConfigurationError(f"unknown suite matrix {name!r}; known: {known}") from None


def suite_matrix(
    name: str, full_scale: bool = False, seed: int | None = None
) -> CsrMatrix:
    """Generate the synthetic analogue of a Table I matrix.

    Args:
        name: matrix name from Table I (e.g. ``"bcsstk13"``).
        full_scale: use the paper's ``N`` even for the largest matrices.
        seed: RNG seed; defaults to a stable hash of the name so repeated
            calls return an identical matrix.

    Returns:
        A symmetric positive-definite CSR matrix matching the spec's
        dimension and (approximately) its nonzero count.
    """
    spec = spec_for(name)
    n = spec.n if full_scale else spec.reduced_n
    if seed is None:
        seed = _stable_seed(name)
    return random_spd(n, spec.nnz_at(n), locality=spec.locality_at(n), seed=seed)


def _stable_seed(name: str) -> int:
    """Deterministic, platform-independent seed derived from the name."""
    value = 2166136261
    for char in name.encode("ascii"):
        value = ((value ^ char) * 16777619) % (2**32)
    return value


def iter_suite(
    full_scale: bool = False,
    names: Sequence[str] | None = None,
) -> Iterator[tuple[MatrixSpec, CsrMatrix]]:
    """Yield ``(spec, matrix)`` pairs for the suite in Table I order.

    Args:
        full_scale: use the paper's dimensions everywhere.
        names: optional subset of matrix names to generate (any order given
            is ignored; Table I order is preserved).
    """
    selected = set(names) if names is not None else None
    if selected is not None:
        unknown = selected - set(_SPECS_BY_NAME)
        if unknown:
            raise ConfigurationError(f"unknown suite matrices: {sorted(unknown)}")
    for spec in SUITE_SPECS:
        if selected is not None and spec.name not in selected:
            continue
        yield spec, suite_matrix(spec.name, full_scale=full_scale)


#: A small, fast subset covering small / medium / large / dense corners of
#: the suite; used by tests and quick benchmark runs.
QUICK_SUITE: Sequence[str] = ("nos3", "bcsstk13", "s3rmt3m3", "msc10848")
