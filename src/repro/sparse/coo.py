"""Coordinate-format (COO) sparse matrices.

COO is the construction format of the library: generators and I/O produce
COO triplets, which are then converted once to :class:`~repro.sparse.csr.CsrMatrix`
for all computational kernels.  The class is intentionally small — it exists
to make matrix assembly simple and explicit, not to compete with CSR on
arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse.csr import storage_dtype


@dataclass(frozen=True)
class CooMatrix:
    """An immutable sparse matrix in coordinate (triplet) format.

    Attributes:
        shape: ``(n_rows, n_cols)`` of the logical matrix.
        row: int64 array of row indices, one per stored entry.
        col: int64 array of column indices, one per stored entry.
        data: float64 or float32 array of values, one per stored entry
            (float input keeps its precision; other dtypes coerce to
            float64 — see :func:`repro.sparse.csr.storage_dtype`).

    Duplicate ``(row, col)`` pairs are permitted and are summed when the
    matrix is converted to CSR, matching the usual finite-element assembly
    convention.
    """

    shape: Tuple[int, int]
    row: np.ndarray
    col: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        n_rows, n_cols = self.shape
        if n_rows < 0 or n_cols < 0:
            raise SparseFormatError(f"negative dimension in shape {self.shape}")
        row = np.ascontiguousarray(self.row, dtype=np.int64)
        col = np.ascontiguousarray(self.col, dtype=np.int64)
        data = np.ascontiguousarray(self.data, dtype=storage_dtype(self.data))
        if not (row.shape == col.shape == data.shape) or row.ndim != 1:
            raise SparseFormatError(
                "row, col and data must be 1-D arrays of equal length; got "
                f"{row.shape}, {col.shape}, {data.shape}"
            )
        if row.size:
            if row.min(initial=0) < 0 or (n_rows and row.max(initial=0) >= n_rows):
                raise SparseFormatError("row index out of range")
            if col.min(initial=0) < 0 or (n_cols and col.max(initial=0) >= n_cols):
                raise SparseFormatError("column index out of range")
        object.__setattr__(self, "row", row)
        object.__setattr__(self, "col", col)
        object.__setattr__(self, "data", data)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_entries(
        cls,
        shape: Tuple[int, int],
        entries: Iterable[Tuple[int, int, float]],
    ) -> "CooMatrix":
        """Build a COO matrix from an iterable of ``(i, j, value)`` triplets."""
        triplets = list(entries)
        if not triplets:
            empty = np.empty(0)
            return cls(shape, empty.astype(np.int64), empty.astype(np.int64), empty)
        rows, cols, vals = zip(*triplets)
        return cls(
            shape,
            np.asarray(rows, dtype=np.int64),
            np.asarray(cols, dtype=np.int64),
            np.asarray(vals, dtype=np.float64),
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CooMatrix":
        """Build a COO matrix holding every non-zero of a dense 2-D array."""
        dense = np.asarray(dense, dtype=storage_dtype(dense))
        if dense.ndim != 2:
            raise ShapeMismatchError(f"expected a 2-D array, got ndim={dense.ndim}")
        row, col = np.nonzero(dense)
        return cls(dense.shape, row, col, dense[row, col])

    # ------------------------------------------------------------------
    # Properties and conversions
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries (duplicates counted separately)."""
        return int(self.data.size)

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of the matrix values."""
        return self.data.dtype

    def transpose(self) -> "CooMatrix":
        """Return the transpose (swaps row/col index arrays; O(1) copies)."""
        return CooMatrix(
            (self.shape[1], self.shape[0]), self.col.copy(), self.row.copy(), self.data.copy()
        )

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array in the storage dtype, summing duplicates."""
        out = np.zeros(self.shape, dtype=self.data.dtype)
        np.add.at(out, (self.row, self.col), self.data)
        return out

    def deduplicated(self) -> "CooMatrix":
        """Return an equivalent COO matrix with duplicates summed and sorted.

        Entries come back in row-major (row, then column) order, with exact
        zeros produced by cancellation retained (they are structural).
        """
        if self.nnz == 0:
            return self
        order = np.lexsort((self.col, self.row))
        row, col, data = self.row[order], self.col[order], self.data[order]
        first = np.ones(row.size, dtype=bool)
        first[1:] = (row[1:] != row[:-1]) | (col[1:] != col[:-1])
        group = np.cumsum(first) - 1
        summed = np.zeros(int(group[-1]) + 1, dtype=self.data.dtype)
        np.add.at(summed, group, data)
        return CooMatrix(self.shape, row[first], col[first], summed)

    def to_csr(self):
        """Convert to :class:`repro.sparse.csr.CsrMatrix`, summing duplicates."""
        from repro.sparse.csr import CsrMatrix

        dedup = self.deduplicated()
        n_rows = self.shape[0]
        counts = np.bincount(dedup.row, minlength=n_rows)
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CsrMatrix(self.shape, indptr, dedup.col, dedup.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CooMatrix(shape={self.shape}, nnz={self.nnz})"
