"""Aggregate and render telemetry event streams.

Consumes the event dicts produced by :class:`repro.obs.telemetry.Telemetry`
(live from an in-memory exporter, or replayed from a JSONL log) and
renders the human-readable protocol summary: counter totals, log-bucketed
histogram tables and a span time breakdown drawn with the same
``|####    |`` bar aesthetic as :func:`repro.machine.trace.render_gantt`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.obs.exporters import Event


@dataclass
class SpanStats:
    """Aggregate of all completed spans sharing one name."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    depth: int = 0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def add(self, duration: float, depth: int) -> None:
        if self.count == 0 or depth < self.depth:
            self.depth = depth
        self.count += 1
        self.total += duration
        self.min = min(self.min, duration)
        self.max = max(self.max, duration)


@dataclass
class EventSummary:
    """Aggregated view of one event stream."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histogram_values: Dict[str, List[float]] = field(default_factory=dict)
    spans: Dict[str, SpanStats] = field(default_factory=dict)
    n_events: int = 0

    def span_count(self, name: str) -> int:
        """Completed spans named ``name`` (0 when never entered)."""
        stats = self.spans.get(name)
        return stats.count if stats is not None else 0


def read_events(path: Union[str, Path]) -> List[Event]:
    """Load a JSONL event log written by the ``"jsonl"`` exporter."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"event log {path} does not exist")
    events: List[Event] = []
    with open(path, encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"{path}:{lineno}: not a JSON event: {error}"
                ) from None
            if not isinstance(event, dict):
                raise ConfigurationError(
                    f"{path}:{lineno}: event must be a JSON object, got {type(event).__name__}"
                )
            events.append(event)
    return events


def aggregate_events(events: Sequence[Event]) -> EventSummary:
    """Fold an event stream into per-instrument aggregates."""
    summary = EventSummary()
    for event in events:
        kind = event.get("type")
        name = event.get("name")
        if not isinstance(name, str):
            continue
        summary.n_events += 1
        if kind == "counter":
            value = float(event.get("value", 1.0))  # type: ignore[arg-type]
            summary.counters[name] = summary.counters.get(name, 0.0) + value
        elif kind == "gauge":
            summary.gauges[name] = float(event.get("value", math.nan))  # type: ignore[arg-type]
        elif kind == "hist":
            summary.histogram_values.setdefault(name, []).append(
                float(event.get("value", math.nan))  # type: ignore[arg-type]
            )
        elif kind == "span":
            start = float(event.get("start", 0.0))  # type: ignore[arg-type]
            end = float(event.get("end", start))  # type: ignore[arg-type]
            depth = int(event.get("depth", 0))  # type: ignore[arg-type]
            summary.spans.setdefault(name, SpanStats()).add(end - start, depth)
    return summary


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _format_seconds(seconds: float) -> str:
    if not math.isfinite(seconds):
        return str(seconds)
    if abs(seconds) >= 1.0:
        return f"{seconds:.3f}s"
    if abs(seconds) >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _bucket_edges(values: Sequence[float]) -> Tuple[float, ...]:
    """Log-spaced edges spanning the positive observations (one per decade).

    Exponents are clamped to the float64 decade range so observations near
    the representable extremes never produce infinite (non-increasing)
    edges.
    """
    positive = [v for v in values if math.isfinite(v) and v > 0.0]
    if not positive:
        return ()
    lo_exp = max(math.floor(math.log10(min(positive))), -307)
    hi_exp = min(math.ceil(math.log10(max(positive))), 308)
    if hi_exp <= lo_exp:
        hi_exp = lo_exp + 1
    return tuple(10.0 ** e for e in range(lo_exp, hi_exp + 1))


def _render_histogram(name: str, values: Sequence[float], width: int) -> List[str]:
    finite = [v for v in values if math.isfinite(v)]
    nans = sum(1 for v in values if math.isnan(v))
    lines = [f"{name}  n={len(values)}"]
    if finite:
        ordered = sorted(finite)
        p50 = ordered[len(ordered) // 2]
        lines[0] += (
            f"  min={min(finite):.3g}  p50={p50:.3g}  max={max(finite):.3g}"
        )
    if nans:
        lines[0] += f"  nan={nans}"
    edges = _bucket_edges(finite)
    if not edges:
        return lines
    counts = [0] * (len(edges) + 1)
    for value in finite:
        index = 0
        while index < len(edges) and value >= edges[index]:
            index += 1
        counts[index] += 1
    peak = max(counts)
    bar_width = max(8, width // 2)
    for index, count in enumerate(counts):
        if count == 0:
            continue
        if index == 0:
            label = f"< {edges[0]:.0e}"
        elif index == len(edges):
            label = f">= {edges[-1]:.0e}"
        else:
            label = f"[{edges[index - 1]:.0e}, {edges[index]:.0e})"
        bar = "#" * max(1, round(bar_width * count / peak))
        lines.append(f"  {label:<20s} {bar:<{bar_width}s} {count}")
    return lines


def render_summary(events: Sequence[Event], width: int = 48) -> str:
    """Render an event stream as the full text summary.

    Sections: counters, gauges, histograms, and the span breakdown whose
    per-name totals are drawn as Gantt-style ``|####    |`` bars scaled
    to the largest total.
    """
    if width < 16:
        raise ConfigurationError(f"width must be >= 16, got {width}")
    summary = aggregate_events(events)
    if summary.n_events == 0:
        return "(no events)"
    lines: List[str] = [f"telemetry summary — {summary.n_events} events"]

    if summary.counters:
        lines += ["", "== counters =="]
        name_width = max(len(name) for name in summary.counters)
        for name in sorted(summary.counters):
            total = summary.counters[name]
            rendered = f"{total:g}"
            lines.append(f"{name:<{name_width}s}  {rendered:>12s}")

    if summary.gauges:
        lines += ["", "== gauges =="]
        name_width = max(len(name) for name in summary.gauges)
        for name in sorted(summary.gauges):
            lines.append(f"{name:<{name_width}s}  {summary.gauges[name]:>12.6g}")

    if summary.histogram_values:
        lines += ["", "== histograms =="]
        for name in sorted(summary.histogram_values):
            lines += _render_histogram(name, summary.histogram_values[name], width)

    if summary.spans:
        lines += ["", "== spans =="]
        ordered = sorted(
            summary.spans.items(), key=lambda kv: (kv[1].depth, -kv[1].total, kv[0])
        )
        name_width = max(len(name) for name, _ in ordered)
        peak = max(stats.total for _, stats in ordered)
        header = (
            f"{'name':<{name_width}s} {'count':>6s} {'total':>10s} {'mean':>10s}"
        )
        lines.append(header)
        for name, stats in ordered:
            if peak > 0:
                bar = "#" * max(1, round(width * stats.total / peak))
            else:
                bar = ""
            indent = "  " * stats.depth
            lines.append(
                f"{name:<{name_width}s} {stats.count:>6d} "
                f"{_format_seconds(stats.total):>10s} "
                f"{_format_seconds(stats.mean):>10s} "
                f"|{indent}{bar:<{width - min(len(indent), width)}s}|"
            )
    return "\n".join(lines)
