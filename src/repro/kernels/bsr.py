"""BSR kernel sets: block-row recompute on dense ``(br, bc)`` tiles.

These are the ``("bsr", ...)`` entries of the kernel registry.  Only the
kernels that touch the *source matrix* differ from their CSR parents:

* ``encode`` converts the tiles back to CSR (an exact, assignment-only
  conversion — see :meth:`repro.sparse.bsr.BsrMatrix.to_csr`) and runs
  the parent encoder, so the checksum matrix is bit-identical to the one
  a CSR scheme would build for the same operator.  The checksum matrix
  itself always stays CSR; only the multiply dispatches on format.
* ``correct_blocks`` / ``row_checksums`` / ``correct_cells`` recompute
  through :meth:`repro.sparse.bsr.BsrMatrix.matvec_rows`, which replays
  the einsum-over-tiles pipeline of ``BsrMatrix._block_rows_matvec`` on
  the covering block rows — bit-identical, row for row, to the clean
  planned multiply, which is what lets a corrected shard re-enter the
  detection pass without a fresh syndrome.

Detection-side kernels (``result_checksums*``, ``compare_syndromes*``)
operate on the result vector and the CSR checksum matrix only, so they
are inherited unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

from repro.kernels.base import ACCUMULATION_DTYPE, KernelSet, Tamper, validate_blocks
from repro.kernels.naive import NaiveKernels
from repro.kernels.vectorized import VectorizedKernels

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotations only)
    from repro.core.blocking import BlockPartition
    from repro.sparse.csr import CsrMatrix


def _as_csr(source: object) -> "CsrMatrix":
    """Exact CSR view of a format matrix (pass-through for CSR itself)."""
    from repro.sparse.csr import CsrMatrix

    if isinstance(source, CsrMatrix):
        return source
    return source.to_csr()  # type: ignore[attr-defined]


class _FormatRecomputeMixin(KernelSet):
    """Source-matrix kernels expressed through the format protocol.

    Every method here reaches the matrix only via ``matvec_rows`` /
    ``nnz_in_rows`` (the :class:`repro.sparse.formats.SparseFormat`
    surface), so one implementation serves every storage format whose
    partial multiply is bit-identical to its full multiply — the
    documented contract of both BSR and ELL.  The tamper-hook sequence
    (one call per block/cell, in partition order, with ``2 * nnz`` work)
    matches the CSR kernels exactly, so fault campaigns replay
    identically under any format.
    """

    def encode(
        self,
        source: "CsrMatrix",
        partition: "BlockPartition",
        weights: np.ndarray,
    ) -> "CsrMatrix":
        return super().encode(_as_csr(source), partition, weights)

    def correct_blocks(
        self,
        matrix: "CsrMatrix",
        partition: "BlockPartition",
        b: np.ndarray,
        r: np.ndarray,
        blocks: np.ndarray,
        tamper: Tamper = None,
    ) -> Tuple[int, int]:
        blocks = validate_blocks(blocks, partition.n_blocks)
        rows = 0
        nnz = 0
        for block in blocks:
            start, stop = partition.bounds(int(block))
            segment = matrix.matvec_rows(start, stop, b)
            block_nnz = matrix.nnz_in_rows(start, stop)
            if tamper is not None:
                tamper("corrected", segment, 2.0 * block_nnz)
            r[start:stop] = segment
            rows += stop - start
            nnz += block_nnz
        return rows, nnz

    def row_checksums(
        self, csr: "CsrMatrix", rows: np.ndarray, b: np.ndarray
    ) -> Tuple[np.ndarray, int]:
        rows = validate_blocks(rows, csr.shape[0])
        values = np.empty(rows.size, dtype=ACCUMULATION_DTYPE)
        nnz = 0
        for i, row in enumerate(rows):
            row = int(row)
            values[i] = csr.matvec_rows(row, row + 1, b)[0]
            nnz += csr.nnz_in_rows(row, row + 1)
        return values, nnz

    def correct_cells(
        self,
        matrix: "CsrMatrix",
        partition: "BlockPartition",
        b: np.ndarray,
        r: np.ndarray,
        cells: np.ndarray,
        tamper: Tamper = None,
    ) -> Tuple[int, int]:
        rows = 0
        nnz = 0
        for block, col in np.asarray(cells, dtype=np.int64).reshape(-1, 2):
            block, col = int(block), int(col)
            start, stop = partition.bounds(block)
            segment = matrix.matvec_rows(start, stop, b[:, col])
            cell_nnz = matrix.nnz_in_rows(start, stop)
            if tamper is not None:
                tamper("corrected", segment, 2.0 * cell_nnz)
            r[start:stop, col] = segment
            rows += stop - start
            nnz += cell_nnz
        return rows, nnz


class BsrNaiveKernels(_FormatRecomputeMixin, NaiveKernels):
    """Reference BSR set: per-block loops over the tile pipeline."""

    name = "naive"
    sparse_format = "bsr"


class BsrVectorizedKernels(_FormatRecomputeMixin, VectorizedKernels):
    """Batched BSR set: detection inherits the fused CSR reductions;
    recompute runs one einsum-over-tiles call per corrected block."""

    name = "vectorized"
    sparse_format = "bsr"
