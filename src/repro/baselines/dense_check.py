"""The related-work *dense check* for SpMV ([30], [31]; paper Section II).

One dense weight vector ``w`` (all ones) encodes the whole matrix into a
dense column-checksum vector ``c = w^T A``; per multiply, the invariant
``w^T r ≈ c b`` is evaluated as two scalar inner products compared on the
host against the norm bound ``tau = ||b||_2`` of [30].  The check says *an*
error happened somewhere — it carries no location, which is why baselines
built on it must either recompute everything or run a localization phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.baselines.scheme import BaselineContext
from repro.core.corrector import TamperHook
from repro.machine import (
    ExecutionMeter,
    Machine,
    TaskGraph,
    blocking_norm_cost,
    dense_check_cost,
    dot_cost,
    spmv_cost,
)
from repro.schemes.result import ProtectedSpmvResult
from repro.sparse.csr import CsrMatrix


@dataclass(frozen=True)
class DenseCheckReport:
    """Outcome of one dense-check evaluation."""

    detected: bool
    operand_checksum: float
    result_checksum: float
    threshold: float

    @property
    def syndrome(self) -> float:
        return self.operand_checksum - self.result_checksum


class DenseChecksum:
    """Per-matrix state of the dense check (the vector ``c = w^T A``)."""

    def __init__(self, matrix: CsrMatrix, bound_scale: float = 1.0) -> None:
        self.matrix = matrix
        self.bound_scale = bound_scale
        self.weights = np.ones(matrix.n_rows, dtype=np.float64)
        #: Dense column checksums; every column participates.
        self.checksum_vector = matrix.rmatvec(self.weights)

    # ------------------------------------------------------------------
    # Numerics
    # ------------------------------------------------------------------
    def operand_checksum(self, b: np.ndarray) -> float:
        """``c b`` — one dense inner product."""
        with np.errstate(over="ignore", invalid="ignore"):
            return float(np.dot(self.checksum_vector, b))

    def result_checksum(self, r: np.ndarray) -> float:
        """``w^T r`` — with all-ones weights, the sum of the result."""
        with np.errstate(invalid="ignore", over="ignore"):
            return float(np.dot(self.weights, r))

    def threshold(self, b: np.ndarray) -> float:
        """The norm bound ``tau = ||b||_2`` of [30]."""
        with np.errstate(over="ignore", invalid="ignore"):
            return self.bound_scale * float(np.linalg.norm(b))

    def evaluate(
        self, t1: float, t2: float, tau: float
    ) -> DenseCheckReport:
        """Host-side comparison; non-finite checksums always detect."""
        difference = t1 - t2
        detected = bool(abs(difference) > tau) or not np.isfinite(difference)
        return DenseCheckReport(
            detected=detected,
            operand_checksum=t1,
            result_checksum=t2,
            threshold=tau,
        )

    def check(
        self,
        b: np.ndarray,
        r: np.ndarray,
        tamper: Optional[TamperHook] = None,
    ) -> DenseCheckReport:
        """Full dense check with tamper hooks on every scalar it produces."""
        box = np.array([self.operand_checksum(b)])
        if tamper is not None:
            tamper("t1", box, 2.0 * self.matrix.n_cols)
        t1 = float(box[0])
        box = np.array([self.result_checksum(r)])
        if tamper is not None:
            tamper("t2", box, 2.0 * self.matrix.n_rows)
        t2 = float(box[0])
        box = np.array([self.threshold(b)])
        if tamper is not None:
            tamper("beta", box, 2.0 * self.matrix.n_cols)
        return self.evaluate(t1, t2, float(box[0]))

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def detection_graph(self, include_spmv: bool = True) -> TaskGraph:
        """Task graph of one dense-checked SpMV.

        ``c b`` overlaps the SpMV (the paper grants the baseline this
        courtesy, Section V-A) and so does the norm reduction; but both the
        norm and the result checksum are *blocking* scalar round trips —
        host-side comparison serializes them after the SpMV.
        """
        matrix = self.matrix
        graph = TaskGraph()
        step1 = []
        if include_spmv:
            cost = spmv_cost(matrix.nnz, int(matrix.row_lengths().max(initial=1)))
            graph.add("spmv", cost.work, cost.span)
            step1.append("spmv")
        cost = dot_cost(matrix.n_cols)
        graph.add("cb", cost.work, cost.span)
        step1.append("cb")
        cost = blocking_norm_cost(matrix.n_cols)
        graph.add("beta", cost.work, cost.span)
        step1.append("beta")
        cost = dense_check_cost(matrix.n_rows)
        graph.add("wr", cost.work, cost.span, deps=step1)
        return graph


class DenseCheckSpMV(BaselineContext):
    """Detection-only dense-checked SpMV ([30]).

    The dense check carries no location information and this scheme has no
    recovery phase: a detection leaves the result uncorrected and the
    ``exhausted`` flag set, signalling the caller (e.g. a checkpointed
    solver) to recover by other means.
    """

    name = "dense_check"

    def __init__(
        self,
        matrix: CsrMatrix,
        machine: Optional[Machine] = None,
        bound_scale: float = 1.0,
        kernel: object = None,
        telemetry: object = None,
    ) -> None:
        super().__init__(matrix, machine=machine, kernel=kernel, telemetry=telemetry)
        self.checker = DenseChecksum(matrix, bound_scale=bound_scale)

    def multiply(
        self,
        b: np.ndarray,
        tamper: Optional[TamperHook] = None,
        meter: Optional[ExecutionMeter] = None,
    ) -> ProtectedSpmvResult:
        """One checked multiply; detections are terminal (no correction)."""
        matrix = self.matrix
        meter = self._meter(meter)
        start_seconds, start_flops = meter.snapshot()
        with self.telemetry.span(
            self._span_name, rows=matrix.n_rows, nnz=matrix.nnz
        ):
            meter.run_graph(self.checker.detection_graph())
            r = matrix.matvec(b)
            if tamper is not None:
                tamper("result", r, 2.0 * matrix.nnz)
            report = self.checker.check(b, r, tamper)
            self._record_check(report.detected)

        seconds, flops = meter.snapshot()
        return ProtectedSpmvResult(
            value=r,
            detections=(report.detected,),
            corrections=(),
            rounds=0,
            seconds=seconds - start_seconds,
            flops=flops - start_flops,
            exhausted=report.detected,
        )

    def verdict(self, b: np.ndarray, r: np.ndarray) -> Tuple[Tuple[int, int], ...]:
        """Row ranges the check implicates — all rows or none (no location)."""
        report = self.checker.check(b, r)
        if report.detected:
            return ((0, self.matrix.n_rows),)
        return ()

    def detection_graph(self) -> TaskGraph:
        """Task graph of one multiply's detection phase."""
        return self.checker.detection_graph()
