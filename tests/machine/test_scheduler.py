"""Unit tests for the event-driven malleable scheduler."""

import pytest

from repro.errors import SchedulerError
from repro.machine import DeviceParams, Machine, TaskGraph


def make_machine(throughput=10.0, launch=0.0, sync=0.0, streams=4, boost=0.0):
    return Machine(
        DeviceParams(
            name="test",
            throughput=throughput,
            launch_overhead=launch,
            sync_time=sync,
            streams=streams,
            concurrency_boost=boost,
        )
    )


def test_empty_graph_has_zero_makespan():
    assert make_machine().makespan(TaskGraph()) == 0.0


def test_single_task_work_bound():
    g = TaskGraph()
    g.add("t", work=100.0)
    assert make_machine(throughput=10.0).makespan(g) == pytest.approx(10.0)


def test_single_task_includes_launch():
    g = TaskGraph()
    g.add("t", work=100.0)
    machine = make_machine(throughput=10.0, launch=2.5)
    assert machine.makespan(g) == pytest.approx(12.5)


def test_single_task_span_bound():
    g = TaskGraph()
    g.add("t", work=1.0, span=7.0)
    machine = make_machine(throughput=1e12, sync=2.0)
    assert machine.makespan(g) == pytest.approx(14.0)


def test_two_independent_tasks_share_throughput():
    g = TaskGraph()
    g.add("a", work=100.0)
    g.add("b", work=100.0)
    # Equal share: both finish at 200/10 = 20s (total work / throughput).
    assert make_machine(throughput=10.0).makespan(g) == pytest.approx(20.0)


def test_unequal_tasks_finish_in_work_order():
    g = TaskGraph()
    g.add("small", work=10.0)
    g.add("big", work=100.0)
    schedule = make_machine(throughput=10.0).schedule(g)
    # Shared until small finishes at t=2 (5 flop/s each); big then runs
    # alone: remaining 90 at 10 flop/s -> finishes at 2 + 9 = 11.
    assert schedule.finish_of("small") == pytest.approx(2.0)
    assert schedule.finish_of("big") == pytest.approx(11.0)
    assert schedule.makespan == pytest.approx(11.0)


def test_dependency_serializes():
    g = TaskGraph()
    g.add("a", work=50.0)
    g.add("b", work=50.0, deps=["a"])
    assert make_machine(throughput=10.0).makespan(g) == pytest.approx(10.0)


def test_stream_limit_queues_third_task():
    g = TaskGraph()
    g.add("a", work=100.0)
    g.add("b", work=100.0)
    g.add("c", work=100.0)
    # Two streams: a and b share 10 flop/s, finish at 20; c runs alone.
    machine = make_machine(throughput=10.0, streams=2)
    schedule = machine.schedule(g)
    assert schedule.finish_of("c") == pytest.approx(30.0)


def test_one_stream_serializes_everything():
    g = TaskGraph()
    g.add("a", work=100.0)
    g.add("b", work=100.0)
    machine = make_machine(throughput=10.0, streams=1)
    assert machine.makespan(g) == pytest.approx(machine.serial_time(g))


def test_span_floor_holds_under_sharing():
    g = TaskGraph()
    g.add("lat", work=1.0, span=100.0)
    g.add("cpu", work=1000.0)
    machine = make_machine(throughput=10.0, sync=1.0)
    schedule = machine.schedule(g)
    assert schedule.finish_of("lat") >= 100.0
    # The latency task stops consuming throughput once its work is done,
    # so the heavy task is barely delayed.
    assert schedule.finish_of("cpu") < 105.0


def test_launch_overheads_of_parallel_tasks_overlap():
    g = TaskGraph()
    g.add("a", work=100.0)
    g.add("b", work=100.0)
    machine = make_machine(throughput=10.0, launch=5.0)
    # Launches overlap: total = 5 + 200/10 = 25, not 10 + 20.
    assert machine.makespan(g) == pytest.approx(25.0)


def test_makespan_respects_brent_lower_bounds():
    g = TaskGraph()
    g.add("a", work=30.0, span=2.0)
    g.add("b", work=50.0, span=3.0, deps=["a"])
    g.add("c", work=20.0, span=1.0, deps=["a"])
    machine = make_machine(throughput=10.0, launch=0.5, sync=0.25)
    makespan = machine.makespan(g)
    work_bound = g.total_work() / machine.params.throughput
    span_bound, _ = g.critical_path(
        machine.params.throughput, machine.params.launch_overhead, machine.params.sync_time
    )
    assert makespan >= work_bound - 1e-9
    assert makespan >= span_bound - 1e-9
    assert makespan <= machine.serial_time(g) + 1e-9


def test_diamond_graph_timing():
    g = TaskGraph()
    g.add("src", work=10.0)
    g.add("left", work=40.0, deps=["src"])
    g.add("right", work=40.0, deps=["src"])
    g.add("sink", work=10.0, deps=["left", "right"])
    # src: 1s; left/right share: 80/10 = 8s; sink: 1s -> 10s total.
    assert make_machine(throughput=10.0).makespan(g) == pytest.approx(10.0)


def test_zero_work_zero_span_task_costs_launch_only():
    g = TaskGraph()
    g.add("noop")
    assert make_machine(launch=3.0).makespan(g) == pytest.approx(3.0)


def test_all_zero_graph_terminates():
    g = TaskGraph()
    g.add("a")
    g.add("b", deps=["a"])
    assert make_machine(launch=0.0).makespan(g) == pytest.approx(0.0)


def test_timings_are_consistent():
    g = TaskGraph()
    g.add("a", work=10.0)
    g.add("b", work=10.0, deps=["a"])
    schedule = make_machine(throughput=10.0, launch=1.0).schedule(g)
    for timing in schedule.timings.values():
        assert timing.start <= timing.compute_start <= timing.finish
    assert schedule.timings["b"].start >= schedule.timings["a"].finish


def test_concurrency_boost_speeds_up_co_scheduled_kernels():
    g = TaskGraph()
    g.add("a", work=100.0)
    g.add("b", work=100.0)
    # boost 0.5: two kernels share 10 * 1.5 = 15 flop/s -> 200/15 s.
    machine = make_machine(throughput=10.0, boost=0.5)
    assert machine.makespan(g) == pytest.approx(200.0 / 15.0)


def test_concurrency_boost_does_not_affect_solo_kernel():
    g = TaskGraph()
    g.add("a", work=100.0)
    assert make_machine(throughput=10.0, boost=0.5).makespan(g) == pytest.approx(10.0)


def test_negative_boost_rejected():
    with pytest.raises(Exception):
        DeviceParams(concurrency_boost=-0.1)
