"""Algebraic single-error correction — an extension beyond the paper.

The paper corrects a flagged block by *recomputing* it.  Classic ABFT
theory offers a cheaper option for the dominant case of a single corrupted
element: encode every block with **two** weight vectors,

* ``w1 = (1, 1, ..., 1)``  — the value checksum, and
* ``w2 = (1, 2, ..., b_s)`` — the position checksum.

For a single error of magnitude ``e`` at local position ``p`` (0-based)
inside block ``k``, the two syndromes satisfy::

    s1_k = t1_k - t2_k = -e
    s2_k               = -e * (p + 1)

so ``p = s2/s1 - 1`` recovers the *exact row* and ``-s1`` the error value.
The scheme recomputes only that one row (instead of the paper's whole
block) and verifies the single-error hypothesis against it: if the
recomputed value disagrees with the algebraic prediction — multi-error
aliasing, rounding noise, or a fault in the checksums themselves — the
scheme falls back to the paper's block recomputation.  A final value-
checksum recheck guards every round.

The price is one extra checksum row per block (``t1``/``t2`` work doubles);
the payoff is corrections that touch one row instead of ``b_s`` rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.blocking import BlockPartition
from repro.core.bounds import SparseBlockBound
from repro.core.checksum import ChecksumMatrix
from repro.core.config import AbftConfig
from repro.core.corrector import TamperHook, correct_blocks
from repro.kernels import resolve_kernels
from repro.errors import ConfigurationError
from repro.machine import (
    ExecutionMeter,
    Machine,
    TaskGraph,
    blocked_checksum_cost,
    checksum_matvec_cost,
    log2ceil,
    norm_cost,
    spmv_cost,
)
from repro.sparse.csr import CsrMatrix

#: Maximum distance of ``s2/s1`` from an integer for the algebraic repair
#: to be trusted; beyond it the scheme falls back to recomputation.
POSITION_TOLERANCE = 0.05

#: Relative tolerance between the algebraically predicted value and the
#: recomputed row value before the single-error hypothesis is rejected.
VALUE_TOLERANCE = 1e-9


@dataclass(frozen=True)
class AlgebraicSpmvResult:
    """Outcome of one dual-checksum protected multiply.

    Attributes:
        value: the (possibly corrected) result vector.
        detected: blocks flagged by the initial detection.
        algebraic_repairs: ``(row, correction)`` pairs fixed by single-row
            repair (the correction is the applied delta ``s1``).
        recomputed_blocks: blocks that needed the whole-block fallback.
        rounds: correction rounds performed.
        seconds / flops: simulated cost.
        exhausted: round budget ran out with blocks still flagged.
    """

    value: np.ndarray
    detected: Tuple[int, ...]
    algebraic_repairs: Tuple[Tuple[int, float], ...]
    recomputed_blocks: Tuple[int, ...]
    rounds: int
    seconds: float
    flops: float
    exhausted: bool

    @property
    def clean(self) -> bool:
        return not self.detected


class DualChecksumSpMV:
    """Fault-tolerant SpMV with algebraic (recomputation-free) repair.

    Args:
        matrix: the sparse input matrix.
        block_size: rows per checksum block.
        machine: simulated device.
        max_rounds: verification/correction round budget.
        kernel: :mod:`repro.kernels` selection (name, instance, or None
            for the configured default).
    """

    def __init__(
        self,
        matrix: CsrMatrix,
        block_size: int = 32,
        machine: Optional[Machine] = None,
        max_rounds: int = 8,
        kernel: object = None,
    ) -> None:
        if block_size < 1:
            raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
        if max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")
        self.matrix = matrix
        self.block_size = block_size
        self.machine = machine or Machine()
        self.max_rounds = max_rounds
        self.kernels = resolve_kernels(kernel)
        self.value_checksum = ChecksumMatrix.build(
            matrix, block_size, "ones", self.kernels
        )
        self.position_checksum = ChecksumMatrix.build(
            matrix, block_size, "linear", self.kernels
        )
        self.bound = SparseBlockBound.from_checksum(self.value_checksum)

    @property
    def partition(self) -> BlockPartition:
        return self.value_checksum.partition

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def _detection_graph(self) -> TaskGraph:
        """Figure 1 with a doubled checksum stream (two C rows per block)."""
        matrix = self.matrix
        graph = TaskGraph()
        max_row = int(matrix.row_lengths().max(initial=1))
        cost = spmv_cost(matrix.nnz, max_row)
        graph.add("spmv", cost.work, cost.span)
        c1 = self.value_checksum.matrix
        c2 = self.position_checksum.matrix
        cost = checksum_matvec_cost(
            c1.nnz + c2.nnz,
            int(max(c1.row_lengths().max(initial=1), c2.row_lengths().max(initial=1))),
        )
        graph.add("t1-dual", cost.work, cost.span)
        cost = norm_cost(matrix.n_cols)
        graph.add("beta", cost.work, cost.span)
        check = blocked_checksum_cost(
            matrix.n_rows, self.block_size, self.partition.n_blocks
        )
        graph.add("check", 2.0 * check.work, check.span, deps=["spmv", "t1-dual", "beta"])
        return graph

    def _repair_graph(
        self, n_repairs: int, repair_nnz: int, rows_rechecked: int
    ) -> TaskGraph:
        """Single-row recomputations plus a fused block recheck."""
        graph = TaskGraph()
        max_row = int(self.matrix.row_lengths().max(initial=1))
        graph.add("repair", 2.0 * repair_nnz + 4.0 * n_repairs, log2ceil(max_row))
        recheck = blocked_checksum_cost(rows_rechecked, self.block_size, n_repairs)
        graph.add("recheck", 2.0 * recheck.work, recheck.span, deps=["repair"])
        return graph

    def _recompute_graph(self, nnz: int, rows: int, blocks: int) -> TaskGraph:
        graph = TaskGraph()
        max_row = int(self.matrix.row_lengths().max(initial=1))
        graph.add("recompute", 2.0 * nnz, log2ceil(max_row))
        recheck = blocked_checksum_cost(rows, self.block_size, blocks)
        graph.add("recheck", 2.0 * recheck.work, recheck.span, deps=["recompute"])
        return graph

    # ------------------------------------------------------------------
    # Protected multiply
    # ------------------------------------------------------------------
    def multiply(
        self,
        b: np.ndarray,
        tamper: Optional[TamperHook] = None,
        meter: Optional[ExecutionMeter] = None,
    ) -> AlgebraicSpmvResult:
        """Execute one protected SpMV with algebraic repair.

        The tamper-hook contract matches :class:`repro.core.FaultTolerantSpMV`.
        """
        matrix = self.matrix
        meter = meter if meter is not None else ExecutionMeter(machine=self.machine)
        start_seconds, start_flops = meter.snapshot()
        meter.run_graph(self._detection_graph())

        r = matrix.matvec(b)
        if tamper is not None:
            tamper("result", r, 2.0 * matrix.nnz)
        t1_value = self.value_checksum.operand_checksums(b)
        t1_position = self.position_checksum.operand_checksums(b)
        if tamper is not None:
            tamper("t1", t1_value, 2.0 * self.value_checksum.nnz)
            tamper("t1", t1_position, 2.0 * self.position_checksum.nnz)
        beta = float(np.linalg.norm(b))

        flagged = self._check(r, t1_value, beta, tamper)
        detected = tuple(int(x) for x in flagged)

        repairs: list[Tuple[int, float]] = []
        recomputed: set[int] = set()
        rounds = 0
        exhausted = False
        while flagged.size:
            if rounds >= self.max_rounds:
                exhausted = True
                break
            rounds += 1
            fallback: list[int] = []
            n_repaired_rows = 0
            n_round_repairs = 0
            round_repair_nnz = 0
            for block in flagged:
                block = int(block)
                repair = self._try_algebraic_repair(
                    block, b, r, t1_value, t1_position, tamper
                )
                if repair is None:
                    fallback.append(block)
                else:
                    repairs.append(repair)
                    n_round_repairs += 1
                    row = repair[0]
                    round_repair_nnz += self.matrix.nnz_in_rows(row, row + 1)
                    start, stop = self.partition.bounds(block)
                    n_repaired_rows += stop - start
            if n_round_repairs:
                meter.run_graph(
                    self._repair_graph(
                        n_round_repairs, round_repair_nnz, n_repaired_rows
                    )
                )
            if fallback:
                blocks = np.asarray(fallback, dtype=np.int64)
                outcome = correct_blocks(
                    matrix, self.partition, b, r, blocks, tamper,
                    kernel=self.kernels,
                )
                recomputed.update(fallback)
                meter.run_graph(
                    self._recompute_graph(
                        outcome.nnz_recomputed,
                        outcome.rows_recomputed,
                        len(fallback),
                    )
                )
            flagged = self._check_blocks(
                r, t1_value, beta, np.asarray(sorted(set(int(x) for x in flagged))),
                tamper,
            )

        seconds, flops = meter.snapshot()
        return AlgebraicSpmvResult(
            value=r,
            detected=detected,
            algebraic_repairs=tuple(repairs),
            recomputed_blocks=tuple(sorted(recomputed)),
            rounds=rounds,
            seconds=seconds - start_seconds,
            flops=flops - start_flops,
            exhausted=exhausted,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check(
        self,
        r: np.ndarray,
        t1_value: np.ndarray,
        beta: float,
        tamper: Optional[TamperHook],
    ) -> np.ndarray:
        t2 = self.value_checksum.result_checksums(r)
        if tamper is not None:
            tamper("t2", t2, 2.0 * self.matrix.n_rows)
        with np.errstate(invalid="ignore", over="ignore"):
            syndrome = t1_value - t2
            thresholds = self.bound.thresholds(beta)
            exceeded = (np.abs(syndrome) > thresholds) | ~np.isfinite(syndrome)
        return np.nonzero(exceeded)[0].astype(np.int64)

    def _check_blocks(
        self,
        r: np.ndarray,
        t1_value: np.ndarray,
        beta: float,
        blocks: np.ndarray,
        tamper: Optional[TamperHook],
    ) -> np.ndarray:
        if blocks.size == 0:
            return blocks
        t2 = self.value_checksum.result_checksums_for_blocks(r, blocks)
        if tamper is not None:
            tamper("t2", t2, 2.0 * float(sum(self.partition.length(int(k)) for k in blocks)))
        with np.errstate(invalid="ignore", over="ignore"):
            syndrome = t1_value[blocks] - t2
            thresholds = self.bound.thresholds(beta, blocks)
            exceeded = (np.abs(syndrome) > thresholds) | ~np.isfinite(syndrome)
        return blocks[exceeded]

    def _try_algebraic_repair(
        self,
        block: int,
        b: np.ndarray,
        r: np.ndarray,
        t1_value: np.ndarray,
        t1_position: np.ndarray,
        tamper: Optional[TamperHook],
    ) -> Optional[Tuple[int, float]]:
        """Solve the two-syndrome system for (position, value), recompute
        the implicated row and verify the single-error hypothesis.

        On success the row is repaired in place and ``(row, s1)`` returned;
        on any inconsistency (non-integer position, out-of-range row, or a
        recomputed value that contradicts the algebraic prediction — the
        multi-error aliasing case) the caller falls back to whole-block
        recomputation.
        """
        start, stop = self.partition.bounds(block)
        segment = r[start:stop]
        with np.errstate(invalid="ignore", over="ignore"):
            s1 = float(t1_value[block] - np.sum(segment))
            weights = np.arange(1.0, stop - start + 1.0)
            s2 = float(t1_position[block] - np.dot(weights, segment))
        # reprolint: disable=ABFT003 -- guards the s2/s1 division: the block
        # already exceeded the rounding bound, so s1 == 0.0 here can only be
        # aliasing (e.g. two cancelling errors) and must defer to fallback
        if not np.isfinite(s1) or not np.isfinite(s2) or s1 == 0.0:
            return None
        ratio = s2 / s1
        position = int(round(ratio)) - 1
        if abs(ratio - round(ratio)) > POSITION_TOLERANCE:
            return None
        if not 0 <= position < stop - start:
            return None
        row = start + position
        predicted = r[row] + s1
        recomputed = self.matrix.matvec_rows(row, row + 1, b)
        if tamper is not None:
            tamper("corrected", recomputed, 2.0 * self.matrix.nnz_in_rows(row, row + 1))
        actual = float(recomputed[0])
        scale = max(abs(predicted), abs(actual), abs(float(t1_value[block])), 1.0)
        if not np.isfinite(actual) or abs(actual - predicted) > VALUE_TOLERANCE * scale:
            return None
        r[row] = actual
        return row, s1
