"""Figure 5 — per-matrix error-detection overhead, ours vs the dense check.

Paper result: ours ranges 12.1 %..109.6 % (b_s = 32), decreasing with
matrix size; average reduction vs the dense check 50.79 % (min 19.3 % at
s3rmq4m1, max 82.1 % at msc10848).  The timed unit is one ours-vs-dense
comparison on a mid-sized matrix.
"""

from conftest import write_result

from repro.analysis import (
    compare_detection_overheads,
    grouped_bar_chart,
    render_detection_comparison,
)


def test_fig5_detection_overhead(benchmark, full_suite):
    comparison = compare_detection_overheads(full_suite)
    report = render_detection_comparison(comparison)
    paper_note = (
        "paper: ours 12.1%..109.6%, average reduction vs dense check 50.79% | "
        f"measured: ours {min(comparison.block):.1%}..{max(comparison.block):.1%}, "
        f"average reduction {comparison.average_reduction:.1%}"
    )
    chart = grouped_bar_chart(
        list(comparison.names[:8]),
        {"ours": list(comparison.block[:8]), "dense": list(comparison.dense[:8])},
        width=36,
        title="detection overhead, first eight matrices (ours vs dense check)",
        formatter=lambda v: f"{v:.1%}",
    )
    write_result(
        "fig5_detection_overhead", f"{report}\n\n{chart}\n\n{paper_note}"
    )

    # Ours beats the dense check on every matrix, and the average
    # reduction lands near the paper's 50.8 %.
    for ours, dense in zip(comparison.block, comparison.dense):
        assert ours < dense
    assert 0.35 < comparison.average_reduction < 0.70
    # Overhead shrinks as matrices grow (suite is NNZ-ordered): the last
    # five matrices are all cheaper to protect than the first five.
    assert max(comparison.block[-5:]) < min(comparison.block[:5])

    benchmark.pedantic(
        lambda: compare_detection_overheads(full_suite[8:10]),
        rounds=1,
        iterations=1,
    )
