"""Unit tests for the plain PCG solver."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError
from repro.solvers import make_preconditioner, pcg
from repro.sparse import CooMatrix, poisson2d, random_spd


@pytest.fixture
def system():
    a = poisson2d(12)  # 144x144, well understood spectrum
    rng = np.random.default_rng(51)
    x_true = rng.standard_normal(a.n_rows)
    return a, x_true, a.matvec(x_true)


def test_converges_to_true_solution(system):
    a, x_true, b = system
    result = pcg(a, b, tol=1e-10)
    assert result.converged
    np.testing.assert_allclose(result.x, x_true, rtol=1e-6)


def test_residual_history_is_recorded(system):
    a, _, b = system
    result = pcg(a, b)
    assert len(result.residual_history) == result.iterations
    assert result.residual_history[-1] < 1e-6


def test_jacobi_preconditioner_reduces_iterations():
    # A badly scaled SPD matrix: diagonal scaling helps a lot.
    rng = np.random.default_rng(52)
    scale = 10.0 ** rng.uniform(-3, 3, size=200)
    base = random_spd(200, 2000, seed=52)
    scaled_dense = scale[:, None] * base.to_dense() * scale[None, :]
    a = CooMatrix.from_dense(scaled_dense).to_csr()
    b = a.matvec(np.ones(200))
    plain = pcg(a, b, max_iterations=2000, tol=1e-8)
    jacobi = pcg(a, b, make_preconditioner("jacobi", a), max_iterations=2000, tol=1e-8)
    assert jacobi.converged
    assert jacobi.iterations < plain.iterations


def test_ssor_and_ic0_also_converge(system):
    a, x_true, b = system
    for kind in ("ssor", "ic0"):
        result = pcg(a, b, make_preconditioner(kind, a), tol=1e-8)
        assert result.converged, kind
        np.testing.assert_allclose(result.x, x_true, rtol=1e-4)


def test_zero_rhs_returns_zero(system):
    a, _, _ = system
    result = pcg(a, np.zeros(a.n_rows))
    assert result.converged
    assert result.iterations == 0
    np.testing.assert_array_equal(result.x, np.zeros(a.n_rows))


def test_initial_guess_speeds_up_exact_start(system):
    a, x_true, b = system
    result = pcg(a, b, x0=x_true)
    assert result.converged
    assert result.iterations == 0


def test_iteration_cap_respected(system):
    a, _, b = system
    result = pcg(a, b, max_iterations=2, tol=1e-14)
    assert not result.converged
    assert result.iterations == 2


def test_callback_invoked_each_iteration(system):
    a, _, b = system
    seen = []
    pcg(a, b, callback=lambda k, x, res: seen.append((k, res)))
    assert [k for k, _ in seen] == list(range(1, len(seen) + 1))
    assert seen[-1][1] < 1e-6


def test_shape_validation(system):
    a, _, b = system
    with pytest.raises(ShapeMismatchError):
        pcg(a, b[:-1])
    with pytest.raises(ShapeMismatchError):
        pcg(a, b, x0=np.zeros(3))
    rect = CooMatrix.from_entries((2, 3), [(0, 0, 1.0)]).to_csr()
    with pytest.raises(ShapeMismatchError):
        pcg(rect, np.zeros(2))


def test_default_cap_is_ten_n(system):
    a, _, b = system
    # Solve an inconsistent tolerance so the cap binds.
    result = pcg(a, b, tol=1e-300)
    assert result.iterations <= 10 * a.n_rows
