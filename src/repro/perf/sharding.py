"""nnz-balanced shard boundaries for planned / parallel SpMV execution.

Row-count-balanced sharding is the obvious split and the wrong one: CSR
row work is proportional to the row's stored entries, and real matrices
(power-law graphs, boundary-heavy meshes) concentrate nnz in few rows.
These helpers cut contiguous spans so each shard carries roughly equal
*work* — ``nnz + row_cost * rows`` — using a single ``searchsorted`` over
the cumulative-work prefix that ``indptr`` already is.

Two alignments are offered:

* :func:`shard_rows` — cuts at arbitrary row boundaries (plain SpMV);
* :func:`shard_blocks` — cuts only at checksum-block starts, so a block
  never straddles two shards and per-shard detection/correction owns
  whole blocks (the property the fused parallel pipeline relies on).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

#: Work charged per row on top of its nnz (indexing + store of the sum).
DEFAULT_ROW_COST = 1.0


def balanced_cuts(cumulative: np.ndarray, n_shards: int) -> np.ndarray:
    """Split units ``0..n`` into at most ``n_shards`` contiguous spans.

    Args:
        cumulative: non-decreasing work prefix of length ``n + 1``
            (``cumulative[i]`` = work of units ``[0, i)``); a CSR
            ``indptr`` is exactly this shape for nnz-weighted rows.
        n_shards: requested shard count (>= 1).

    Returns:
        Strictly increasing int64 boundaries starting at 0 and ending at
        ``n``; shard ``i`` covers units ``[cuts[i], cuts[i+1])``.  Fewer
        than ``n_shards`` spans come back when the work cannot be split
        further (tiny inputs, one giant unit).

    **Imbalance bound.**  Each interior cut is the leftmost position
    whose prefix reaches its ideal target ``i * total / n_shards``, so
    ``cumulative[cuts[i]]`` lies within one unit's work *below* target
    ``i`` and strictly below target ``i`` plus that unit.  Whenever the
    full ``n_shards + 1`` boundaries survive (no merged cuts), every
    shard's work is therefore at most ``total / n_shards + max_unit``,
    where ``max_unit = max(np.diff(cumulative))`` — the ideal share plus
    one indivisible unit (one row for :func:`shard_rows`, one checksum
    block for :func:`shard_blocks`).  When cuts merge, the guarantee is
    the coarser one over the surviving spans: the property tests in
    ``tests/perf/test_sharding_properties.py`` pin both cases.
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    cumulative = np.asarray(cumulative, dtype=np.float64)
    if cumulative.ndim != 1 or cumulative.size < 1:
        raise ConfigurationError(
            f"cumulative work prefix must be 1-D and non-empty, got shape "
            f"{cumulative.shape}"
        )
    n = cumulative.size - 1
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    total = float(cumulative[-1] - cumulative[0])
    if n_shards == 1 or total <= 0.0:
        return np.array([0, n], dtype=np.int64)
    targets = cumulative[0] + total * (np.arange(1, n_shards) / n_shards)
    interior = np.searchsorted(cumulative, targets, side="left")
    cuts = np.concatenate(([0], interior, [n])).astype(np.int64)
    np.maximum.accumulate(cuts, out=cuts)
    np.minimum(cuts, n, out=cuts)
    return np.unique(cuts)


def row_work(
    indptr: np.ndarray, row_cost: float = DEFAULT_ROW_COST
) -> np.ndarray:
    """Cumulative per-row work prefix: ``indptr[i] + row_cost * i``."""
    indptr = np.asarray(indptr, dtype=np.float64)
    return indptr + row_cost * np.arange(indptr.size, dtype=np.float64)


def shard_rows(
    indptr: np.ndarray, n_shards: int, row_cost: float = DEFAULT_ROW_COST
) -> np.ndarray:
    """nnz-balanced row cuts for a CSR matrix (``[0, ..., n_rows]``)."""
    return balanced_cuts(row_work(indptr, row_cost), n_shards)


def shard_blocks(
    indptr: np.ndarray,
    block_starts: np.ndarray,
    n_shards: int,
    row_cost: float = DEFAULT_ROW_COST,
) -> np.ndarray:
    """nnz-balanced *block* cuts aligned to checksum-block boundaries.

    Args:
        indptr: the source matrix's CSR row pointer.
        block_starts: block start rows of length ``n_blocks + 1`` ending
            with ``n_rows`` (see
            :meth:`repro.core.blocking.BlockPartition.block_starts`).
        n_shards: requested shard count.
        row_cost: per-row work on top of nnz.

    Returns:
        Strictly increasing indices into the *block* axis, starting at 0
        and ending at ``n_blocks``; shard ``i`` owns blocks
        ``[cuts[i], cuts[i+1])`` and rows
        ``[block_starts[cuts[i]], block_starts[cuts[i+1]])``.
    """
    block_starts = np.asarray(block_starts, dtype=np.int64)
    work = row_work(indptr, row_cost)
    return balanced_cuts(work[block_starts], n_shards)
