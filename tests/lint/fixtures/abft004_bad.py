"""Fixture: silent downcasts below float64."""

import numpy as np


def shrink(values):
    return values.astype(np.float32)  # MARK:ABFT004


def shrink_by_name(values):
    return values.astype("float16")  # MARK:ABFT004


def allocate(n):
    return np.zeros(n, dtype="float32")  # MARK:ABFT004


def scalar(x):
    return np.float32(x)  # MARK:ABFT004
