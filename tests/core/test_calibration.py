"""Unit tests for empirical bound calibration."""

import numpy as np
import pytest

from repro.core import AbftConfig, BlockAbftDetector, EmpiricalBound, SparseBlockBound
from repro.core.checksum import ChecksumMatrix
from repro.errors import ConfigurationError
from repro.sparse import random_spd


@pytest.fixture(scope="module")
def matrix():
    return random_spd(400, 4500, seed=111)


def test_calibration_produces_positive_constants(matrix):
    bound = EmpiricalBound.calibrate(matrix, samples=30, seed=1)
    assert (bound.constants > 0).all()
    assert bound.samples == 30


def test_thresholds_scale_with_beta(matrix):
    bound = EmpiricalBound.calibrate(matrix, samples=20, seed=2)
    np.testing.assert_allclose(bound.thresholds(4.0), 2.0 * bound.thresholds(2.0))


def test_thresholds_subset_selection(matrix):
    bound = EmpiricalBound.calibrate(matrix, samples=20, seed=3)
    full = bound.thresholds(1.0)
    np.testing.assert_array_equal(
        bound.thresholds(1.0, blocks=np.array([3, 0])), full[[3, 0]]
    )


def test_no_false_positives_on_fresh_operands(matrix):
    detector = BlockAbftDetector(
        matrix,
        AbftConfig(block_size=32),
        bound_override=EmpiricalBound.calibrate(matrix, samples=50, seed=4),
    )
    rng = np.random.default_rng(5)
    for _ in range(50):
        b = rng.standard_normal(matrix.n_cols) * 10.0 ** rng.integers(-3, 4)
        assert detector.detect(b, matrix.matvec(b)).clean


def test_detects_injected_errors(matrix):
    detector = BlockAbftDetector(
        matrix,
        AbftConfig(block_size=32),
        bound_override=EmpiricalBound.calibrate(matrix, samples=50, seed=6),
    )
    rng = np.random.default_rng(7)
    b = rng.standard_normal(matrix.n_cols)
    r = matrix.matvec(b)
    r[77] *= 1.0001
    assert 77 // 32 in detector.detect(b, r).flagged


def test_empirical_tighter_than_analytical(matrix):
    """Measured rounding error sits well below the worst-case bound."""
    checksum = ChecksumMatrix.build(matrix, 32)
    analytical = SparseBlockBound.from_checksum(checksum)
    empirical = EmpiricalBound.calibrate(matrix, samples=50, seed=8)
    # On average (and for most blocks) the empirical bound is tighter.
    assert empirical.thresholds(1.0).mean() < analytical.thresholds(1.0).mean()
    tighter = (empirical.thresholds(1.0) < analytical.thresholds(1.0)).mean()
    assert tighter > 0.8


def test_safety_factor_multiplies(matrix):
    tight = EmpiricalBound.calibrate(matrix, samples=20, seed=9, safety=2.0)
    loose = EmpiricalBound.calibrate(matrix, samples=20, seed=9, safety=4.0)
    np.testing.assert_allclose(loose.constants, 2.0 * tight.constants)


def test_validation(matrix):
    with pytest.raises(ConfigurationError):
        EmpiricalBound.calibrate(matrix, samples=0)
    with pytest.raises(ConfigurationError):
        EmpiricalBound.calibrate(matrix, safety=0.0)


def test_more_samples_never_lower_peaks(matrix):
    few = EmpiricalBound.calibrate(matrix, samples=5, seed=10, safety=1.0)
    # Same seed: the first 5 operands repeat, so peaks can only grow.
    many = EmpiricalBound.calibrate(matrix, samples=40, seed=10, safety=1.0)
    assert (many.constants >= few.constants - 1e-30).all()
