"""Related-work fault-tolerance baselines the paper compares against.

All of them register with :mod:`repro.schemes` and share its driver
contract (injected kernels/telemetry, unified result type):

* :class:`DenseCheckSpMV` — detection-only dense ABFT check of [30], [31]
  (``dense_check``);
* :class:`CompleteRecomputationSpMV` — dense check + full recomputation
  [31] (``complete``);
* :class:`PartialRecomputationSpMV` — dense check + iterative bisection
  localization (40 % early stop) + range recomputation [30]
  (``bisection``);
* :class:`CheckpointSpMV` / :class:`CheckpointStore` — dense check with
  checkpoint/rollback recovery (``checkpoint``);
* :class:`DwcSpMV` / :class:`TmrSpMV` — duplication with comparison and
  triple modular redundancy (``redundancy`` / ``tmr``).
"""

from repro.baselines.bisection import (
    DEFAULT_EARLY_STOP,
    BisectionLocalizer,
    LocalizationOutcome,
    PartialRecomputationSpMV,
)
from repro.baselines.checkpoint import (
    DEFAULT_CHECKPOINT_INTERVAL,
    CheckpointSpMV,
    CheckpointStore,
)
from repro.baselines.complete import CompleteRecomputationSpMV
from repro.baselines.dense_check import DenseCheckReport, DenseCheckSpMV, DenseChecksum
from repro.baselines.redundancy import DwcSpMV, TmrSpMV
from repro.baselines.scheme import BaselineContext, BaselineSpmvResult, SpmvScheme

__all__ = [
    "BaselineContext",
    "BaselineSpmvResult",
    "SpmvScheme",
    "DenseChecksum",
    "DenseCheckReport",
    "DenseCheckSpMV",
    "CompleteRecomputationSpMV",
    "PartialRecomputationSpMV",
    "BisectionLocalizer",
    "LocalizationOutcome",
    "DEFAULT_EARLY_STOP",
    "CheckpointSpMV",
    "CheckpointStore",
    "DwcSpMV",
    "TmrSpMV",
    "DEFAULT_CHECKPOINT_INTERVAL",
]
