"""The project-wide ABFT rule pack (ABFT008-ABFT012).

These rules consume the linked :class:`~repro.lint.project.graph.ProjectContext`
rather than a single module: each one enforces a cross-module protocol
invariant of the parallel ABFT runtime that per-file rules (ABFT001-007)
are structurally blind to — arena lifecycle discipline across the
process-worker boundary, registry immutability after fork, checksum
freshness across call boundaries, lock discipline on shared module
state, and the zero-allocation contract of the steady-state plan path.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.project.graph import FuncId, ProjectContext
from repro.lint.rules.abft import REFRESH_CALLS
from repro.lint.rules.base import ProjectRule

#: Functions allowed to write protected storage without a refresh: the
#: refresh implementations themselves plus object construction.
_REFRESH_SCOPES = REFRESH_CALLS | {"__init__", "__post_init__"}

#: Qualnames rooting the steady-state (detect) hot path.  The
#: tracemalloc-pinned zero-allocation contract from the planned-SpMV PR
#: covers exactly the functions reachable from these.
HOT_PATH_ROOTS = frozenset(
    {
        "ProtectedPlan.execute",
        "ProtectedPlan._detect_shard",
        "SpmvPlan.execute",
        "SpmvPlan.execute_shard",
        "FusedShardBuffers.detect_shard",
        "FusedShardBuffers.compare_range",
    }
)


def _arena_evidence(project: ProjectContext, module: str) -> List[str]:
    """Module defining the ``Arena`` class, as finding evidence."""
    cid = project.lookup_class(module, "Arena")
    return [cid[0]] if cid is not None else []


class ArenaProtocolRule(ProjectRule):
    """ABFT008: arena buffers written outside the worker protocol or after close."""

    rule_id = "ABFT008"
    title = "shared-memory arena buffer written outside the worker protocol"
    rationale = (
        "The processes backend publishes shard results through shm Arena "
        "views under a ring-generation protocol; a write from outside a "
        "worker entry point (or the owning backend) bypasses publication "
        "ordering, and any use after close() touches unmapped memory — "
        "both corrupt the t1/t2 comparison the detector trusts."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        workers = project.reachable(project.spawn_roots("process"))
        for fid, fn in project.iter_functions():
            module, _ = fid
            events: List[Dict[str, Any]] = fn["arena_events"]
            if not events:
                continue
            closes: Dict[str, int] = {}
            created: Set[str] = set()
            for event in events:
                if event["op"] in ("create", "attach") and event["var"]:
                    created.add(event["var"])
                if event["op"] == "close":
                    closes.setdefault(event["var"], event["line"])
            for event in events:
                var = event["var"]
                closed_at = closes.get(var)
                if (
                    event["op"] in ("view_write", "array")
                    and closed_at is not None
                    and event["line"] > closed_at
                ):
                    yield project.finding(
                        module, self.rule_id, event["line"], event["col"],
                        f"arena '{var}' used after close() on line {closed_at}; "
                        "views into a closed arena are unmapped shared memory",
                        evidence_modules=_arena_evidence(project, module),
                    )
                    continue
                if event["op"] != "view_write":
                    continue
                if var in created or fid in workers:
                    continue
                if self._owns_arena(project, fid):
                    continue
                yield project.finding(
                    module, self.rule_id, event["line"], event["col"],
                    f"write to a view of arena '{var}' outside the worker "
                    "protocol: the function neither owns the arena nor is "
                    "reachable from a process worker entry point, so the "
                    "write bypasses ring-generation publication",
                    evidence_modules=_arena_evidence(project, module),
                )

    @staticmethod
    def _owns_arena(project: ProjectContext, fid: FuncId) -> bool:
        cls = project.functions[fid].get("class")
        if not cls:
            return False
        info = project.classes.get((fid[0], cls))
        return info is not None and "Arena" in info["attr_types"].values()


class RegistryMutationRule(ProjectRule):
    """ABFT009: registry mutation reachable from worker entry points."""

    rule_id = "ABFT009"
    title = "registry mutation reachable from a worker/fork entry point"
    rationale = (
        "Kernel/scheme/backend/exporter registries are wired once in the "
        "parent; a register/unregister call that runs inside a spawned "
        "worker (or at import time of the worker's module, which every "
        "spawned process re-executes) forks the registry state per "
        "process, so detect and correct silently run different code."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        spawns = [s for s in project.spawn_targets() if s["spawn"] == "process"]
        workers = project.reachable(s["fid"] for s in spawns)
        worker_modules = {s["fid"][0] for s in spawns} | {
            s["site_module"] for s in spawns
        }
        site_modules = sorted({s["site_module"] for s in spawns})
        for fid in sorted(workers):
            fn = project.functions[fid]
            for call in fn["registry_calls"]:
                yield project.finding(
                    fid[0], self.rule_id, call["line"], call["col"],
                    f"'{call['name']}' mutates a runtime registry and is "
                    "reachable from a process worker entry point; registries "
                    "must be frozen before workers spawn",
                    evidence_modules=site_modules,
                )
        for module in sorted(worker_modules):
            record = project.records.get(module)
            if record is None:
                continue
            for call in record.summary["module_level"]["registry_calls"]:
                yield project.finding(
                    module, self.rule_id, call["line"], call["col"],
                    f"import-time '{call['name']}' in a module that defines "
                    "or spawns process workers: every spawned process "
                    "re-imports this module and re-mutates the registry",
                    evidence_modules=site_modules,
                )


class ChecksumEscapeRule(ProjectRule):
    """ABFT010: self-mutation of protected storage escaping without refresh."""

    rule_id = "ABFT010"
    title = "protected-storage mutation escapes callers without checksum refresh"
    rationale = (
        "ABFT001 deliberately skips self.data stores — locally they are "
        "indistinguishable from a constructor laying out storage.  "
        "Project-wide they are not: a method that mutates its own "
        "data/indices/indptr and returns to a caller that never refreshes "
        "leaves checksums encoding the pre-mutation matrix, so t1 = t2 "
        "holds for values the operand no longer contains."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        refreshing = project.refreshing_functions()
        callers = project.callers()
        for fid, fn in project.iter_functions():
            if fn["name"] in _REFRESH_SCOPES:
                continue
            mutations = [
                m
                for m in fn["mutations"]
                if m["escapes"] and m["base_kind"] == "self"
            ]
            if not mutations or fid in refreshing:
                continue
            bad_callers = sorted(
                c for c in callers.get(fid, set()) if c not in refreshing
            )
            if not bad_callers:
                continue
            caller_names = ", ".join(f"{m}:{q}" for m, q in bad_callers[:3])
            for mutation in mutations:
                yield project.finding(
                    fid[0], self.rule_id, mutation["line"], mutation["col"],
                    f"'{fid[1]}' mutates protected storage "
                    f"'{mutation['target']}' and neither it nor its "
                    f"caller(s) ({caller_names}) refresh checksums on any "
                    "path; stale checksums make later detection meaningless",
                    evidence_modules=[c[0] for c in bad_callers],
                )


class SharedStateRaceRule(ProjectRule):
    """ABFT011: unsynchronized writes to shared state on concurrent paths."""

    rule_id = "ABFT011"
    title = "unsynchronized write to module state on a concurrent backend path"
    rationale = (
        "The threads and processes backends both drive shard work "
        "concurrently; a write to module-level mutable state from a "
        "function running on those paths without a lock is a data race, "
        "and a racy detector violates the assumption (cf. the "
        "verification-interval analyses in PAPERS.md) that silent-error "
        "checks are themselves deterministic."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        thread_side = project.reachable(project.spawn_roots("thread"))
        process_side = project.reachable(project.spawn_roots("process"))
        spawn_sites = {
            kind: sorted(
                {
                    s["site_module"]
                    for s in project.spawn_targets()
                    if s["spawn"] == kind
                }
            )
            for kind in ("thread", "process")
        }
        for fid, fn in project.iter_functions():
            on_thread = fid in thread_side
            on_process = fid in process_side
            if not (on_thread or on_process):
                continue
            module = fid[0]
            state = set(
                project.records[module].summary["module_level"]["mutable_state"]
            )
            for write in fn["state_writes"]:
                if write["name"] not in state:
                    continue
                if any("lock" in guard.lower() for guard in write["guards"]):
                    continue
                paths = [
                    kind
                    for kind, hit in (
                        ("thread", on_thread), ("process", on_process)
                    )
                    if hit
                ]
                evidence = sorted(
                    {m for kind in paths for m in spawn_sites[kind]}
                )
                yield project.finding(
                    module, self.rule_id, write["line"], write["col"],
                    f"write to module-level mutable state '{write['name']}' "
                    f"({write['op']}) without holding a lock, in a function "
                    f"reachable from the {' and '.join(paths)} backend "
                    "path(s); guard it with a module lock",
                    evidence_modules=evidence,
                )


class HotPathAllocationRule(ProjectRule):
    """ABFT012: allocation inside the steady-state plan hot path."""

    rule_id = "ABFT012"
    title = "allocation in a steady-state plan hot path"
    rationale = (
        "The planned-SpMV design pins the detect path to zero "
        "steady-state allocations (tracemalloc-verified at runtime); a "
        "new np.* array or container build in any function reachable "
        "from plan execution re-introduces allocator jitter and defeats "
        "the amortization argument the plan API exists for."
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        roots = [fid for fid in project.functions if fid[1] in HOT_PATH_ROOTS]
        per_root: Dict[FuncId, Set[FuncId]] = {
            root: self._prune_reachable(project, root) for root in roots
        }
        hot: Set[FuncId] = set()
        for reached in per_root.values():
            hot |= reached
        for fid in sorted(hot):
            fn = project.functions[fid]
            for alloc in fn["allocations"]:
                evidence = sorted(
                    {
                        root[0]
                        for root, reached in per_root.items()
                        if fid in reached
                    }
                )
                yield project.finding(
                    fid[0], self.rule_id, alloc["line"], alloc["col"],
                    f"allocation ({alloc['what']}) in '{fid[1]}', reachable "
                    "from the steady-state plan hot path; preallocate in "
                    "the plan and reuse buffers (zero-allocation contract)",
                    evidence_modules=evidence,
                )

    @staticmethod
    def _prune_reachable(project: ProjectContext, root: FuncId) -> Set[FuncId]:
        """Hot-path closure of one root.

        Traversal prunes correction functions (``correct_shard`` and
        friends allocate by design — correction is the rare path) and
        telemetry modules (spans are diagnostic no-ops unless enabled).
        """
        seen: Set[FuncId] = set()
        queue = [root]
        while queue:
            fid = queue.pop()
            if fid in seen:
                continue
            if "correct" in fid[1].lower() or "telemetry" in fid[0]:
                continue
            seen.add(fid)
            queue.extend(project.callees(fid))
        return seen


#: The project rule pack, in id order (registered by :mod:`repro.lint`).
PROJECT_RULES: Tuple[ProjectRule, ...] = (
    ArenaProtocolRule(),
    RegistryMutationRule(),
    ChecksumEscapeRule(),
    SharedStateRaceRule(),
    HotPathAllocationRule(),
)
