"""Exception hierarchy for the :mod:`repro` package.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class at API boundaries while tests can assert on precise
subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SparseFormatError(ReproError):
    """A sparse matrix violates a structural invariant (CSR/COO layout)."""


class ShapeMismatchError(ReproError):
    """Operand shapes are incompatible for the requested operation."""


class SingularMatrixError(ReproError):
    """A matrix required to be non-singular (or SPD) is not."""


class ConvergenceError(ReproError):
    """An iterative solver exhausted its iteration budget."""


class SchedulerError(ReproError):
    """The machine-model scheduler was given an invalid task graph."""


class InjectionError(ReproError):
    """A fault-injection request is malformed (bad target, bad burst)."""


class ConfigurationError(ReproError):
    """An ABFT scheme or experiment was configured inconsistently."""


class ParallelBackendError(ConfigurationError):
    """A parallel execution backend failed outside the numeric contract.

    Raised when the machinery *around* the shards — worker processes,
    shared-memory segments, result channels — misbehaves.  The numeric
    contract itself (bit-identical results across backends) is enforced
    by the differential test matrix, not by exceptions.
    """


class WorkerCrashError(ParallelBackendError):
    """A pool worker died (killed, segfaulted, OOM) mid-operation."""


class WorkerTimeoutError(ParallelBackendError):
    """A pool worker failed to answer within the configured timeout."""
