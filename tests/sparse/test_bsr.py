"""Unit tests for the BSR format."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse import CooMatrix, block_stencil_spd, random_spd
from repro.sparse.bsr import BsrMatrix


@pytest.fixture
def csr():
    return random_spd(70, 600, seed=417)


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("block_shape", [1, 2, 3, 8, (2, 3), (7, 5)])
def test_round_trip_csr_bsr_csr(csr, block_shape):
    bsr = BsrMatrix.from_csr(csr, block_shape)
    assert bsr.to_csr() == csr
    assert bsr.nnz == csr.nnz


def test_round_trip_non_divisible_edges():
    # 70 rows with 16x16 tiles: the last block row/column is ragged.
    csr = random_spd(70, 600, seed=3)
    bsr = BsrMatrix.from_csr(csr, 16)
    assert bsr.n_block_rows == 5 and bsr.n_block_cols == 5
    assert bsr.to_csr() == csr


def test_explicit_zero_survives_round_trip():
    coo = CooMatrix.from_entries((6, 6), [(0, 1, 0.0), (2, 3, 5.0)])
    csr = coo.to_csr()
    bsr = BsrMatrix.from_csr(csr, 4)
    assert bsr.nnz == 2  # the explicit zero is a real (masked) entry
    assert bsr.to_csr() == csr


def test_from_coo_sums_duplicates():
    coo = CooMatrix(
        (4, 4),
        np.array([1, 1, 2]),
        np.array([2, 2, 0]),
        np.array([1.5, 2.5, -1.0]),
    )
    bsr = BsrMatrix.from_coo(coo, 2)
    assert bsr.to_csr() == coo.to_csr()
    assert bsr.nnz == 2


def test_to_dense_matches_csr(csr):
    bsr = BsrMatrix.from_csr(csr, 8)
    np.testing.assert_array_equal(bsr.to_dense(), csr.to_dense())


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
@pytest.mark.parametrize("block_shape", [1, 4, 16, (3, 5)])
def test_matvec_matches_csr(csr, block_shape):
    bsr = BsrMatrix.from_csr(csr, block_shape)
    b = np.random.default_rng(0).standard_normal(csr.n_cols)
    np.testing.assert_allclose(bsr.matvec(b), csr.matvec(b), rtol=1e-12)
    np.testing.assert_allclose(bsr @ b, csr @ b, rtol=1e-12)


@pytest.mark.parametrize("row_range", [(0, 70), (0, 1), (5, 29), (63, 70), (16, 16)])
def test_matvec_rows_bit_identical_to_full(csr, row_range):
    """Partial recomputation is the correction kernel; it must reproduce
    the full multiply's bits row for row, even across tile boundaries."""
    bsr = BsrMatrix.from_csr(csr, 8)
    b = np.random.default_rng(1).standard_normal(csr.n_cols)
    full = bsr.matvec(b)
    start, stop = row_range
    np.testing.assert_array_equal(bsr.matvec_rows(start, stop, b), full[start:stop])


def test_matvec_rows_rejects_bad_range(csr):
    bsr = BsrMatrix.from_csr(csr, 8)
    b = np.zeros(csr.n_cols)
    with pytest.raises(ShapeMismatchError):
        bsr.matvec_rows(5, 3, b)
    with pytest.raises(ShapeMismatchError):
        bsr.matvec_rows(0, csr.n_rows + 1, b)


def test_padded_operand_buffer_reuse(csr):
    bsr = BsrMatrix.from_csr(csr, 16)
    b = np.random.default_rng(2).standard_normal(csr.n_cols)
    out = np.zeros(bsr.n_block_cols * bsr.block_shape[1])
    returned = bsr.padded_operand(b, out=out)
    assert returned is out
    np.testing.assert_array_equal(out[: csr.n_cols], b)
    assert not out[csr.n_cols :].any()
    with pytest.raises(ShapeMismatchError):
        bsr.padded_operand(np.zeros(csr.n_cols + 1))


def test_matvec_out_buffer(csr):
    bsr = BsrMatrix.from_csr(csr, 8)
    b = np.random.default_rng(3).standard_normal(csr.n_cols)
    out = np.empty(csr.n_rows)
    returned = bsr.matvec(b, out=out)
    assert returned is out
    np.testing.assert_array_equal(out, bsr.matvec(b))


# ----------------------------------------------------------------------
# Accounting
# ----------------------------------------------------------------------
def test_fill_ratio_is_exact_on_block_structured_matrix():
    csr = block_stencil_spd(36, 8, seed=5)
    bsr = BsrMatrix.from_csr(csr, 8)
    assert bsr.fill_ratio == 1.0


def test_fill_ratio_low_on_diagonal():
    diag = CooMatrix.from_dense(np.eye(16)).to_csr()
    bsr = BsrMatrix.from_csr(diag, 8)
    # Two 8x8 tiles hold 8 real entries each: fill = 8/64.
    assert bsr.fill_ratio == pytest.approx(8 / 64)


def test_row_nnz_accounting(csr):
    bsr = BsrMatrix.from_csr(csr, 8)
    np.testing.assert_array_equal(bsr.row_nnz(), csr.row_lengths())
    assert bsr.nnz_in_rows(0, csr.n_rows) == csr.nnz
    assert bsr.nnz_in_rows(10, 20) == int(csr.row_lengths()[10:20].sum())


def test_empty_matrix():
    csr = CooMatrix.from_entries((9, 9), []).to_csr()
    bsr = BsrMatrix.from_csr(csr, 4)
    assert bsr.n_tiles == 0 and bsr.nnz == 0 and bsr.fill_ratio == 0.0
    np.testing.assert_array_equal(bsr.matvec(np.ones(9)), np.zeros(9))
    assert bsr.to_csr() == csr


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_rejects_bad_block_shape():
    with pytest.raises(SparseFormatError, match="block shape"):
        BsrMatrix((4, 4), 0, np.zeros(5, dtype=np.int64), np.empty(0, dtype=np.int64),
                  np.empty((0, 1, 1)))


def test_rejects_inconsistent_indptr():
    with pytest.raises(SparseFormatError, match="indptr"):
        BsrMatrix((4, 4), 2, np.array([0, 1]), np.empty(0, dtype=np.int64),
                  np.empty((0, 2, 2)))


def test_rejects_nonzero_fill_slot():
    data = np.ones((1, 2, 2))
    mask = np.zeros((1, 2, 2), dtype=bool)
    mask[0, 0, 0] = True
    with pytest.raises(SparseFormatError, match="fill slots"):
        BsrMatrix((2, 2), 2, np.array([0, 1]), np.array([0]), data, mask)


def test_rejects_block_column_out_of_range():
    with pytest.raises(SparseFormatError, match="block-column"):
        BsrMatrix((2, 2), 2, np.array([0, 1]), np.array([3]), np.ones((1, 2, 2)))
