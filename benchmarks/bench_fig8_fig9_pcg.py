"""Figures 8 and 9 — the PCG case study: runtime overhead and success rate.

Full PCG solves under an exponential error process (λ errors per
arithmetic operation) for the three protected schemes.  Paper results:

* Figure 8 (overhead vs fault-free unprotected PCG, correct runs only):
  ours 39.8 % → 52.3 % as λ goes 1e-8 → 1e-4 (+31.3 % relative), partial
  58.4 % → 87.4 %, checkpointing 62.9 % → 162.9 %.
* Figure 9 (success rate): ~100 % for everyone at 1e-8, diverging with λ;
  at the high end ours is 1.61x partial and 3.6x checkpointing.

Our reduced-scale systems execute fewer arithmetic operations per solve
than the paper's, so a given λ sits further left on the stress axis; the
orderings and trends are the reproduction target (see EXPERIMENTS.md).
The timed unit is a single protected PCG solve.
"""

import numpy as np
import pytest
from conftest import PCG_MAX_ITERATION_FACTOR, PCG_RUNS_PER_CELL, write_result

from repro.analysis import PCG_ERROR_RATES, render_pcg_cells, sweep_pcg
from repro.solvers import FtPcgOptions, run_pcg

SCHEMES = ("ours", "partial", "checkpoint")


@pytest.fixture(scope="module")
def pcg_cells(pcg_suite):
    options = FtPcgOptions(max_iteration_factor=PCG_MAX_ITERATION_FACTOR)
    return sweep_pcg(
        pcg_suite,
        schemes=SCHEMES,
        error_rates=PCG_ERROR_RATES,
        runs=PCG_RUNS_PER_CELL,
        seed=0,
        options=options,
    )


def test_fig8_pcg_overhead(benchmark, pcg_suite, pcg_cells):
    report = render_pcg_cells(pcg_cells, schemes=SCHEMES, rates=PCG_ERROR_RATES)
    low, high = PCG_ERROR_RATES[0], PCG_ERROR_RATES[-1]
    ours_low = pcg_cells[("ours", low)].mean_overhead
    paper_note = (
        "paper Fig. 8: ours 39.8%->52.3%, partial 58.4%->87.4%, "
        "checkpoint 62.9%->162.9% (1e-8 -> 1e-4) | "
        f"measured at 1e-8: ours {ours_low:.1%}, "
        f"partial {pcg_cells[('partial', low)].mean_overhead:.1%}, "
        f"checkpoint {pcg_cells[('checkpoint', low)].mean_overhead:.1%}"
    )
    write_result("fig8_pcg_overhead", f"{report}\n{paper_note}")

    # Low-rate ordering: ours < partial and ours < checkpoint (Fig. 8 left).
    assert ours_low < pcg_cells[("partial", low)].mean_overhead
    assert ours_low < pcg_cells[("checkpoint", low)].mean_overhead
    # Ours stays cheap as the rate scales four orders of magnitude.
    ours_high = pcg_cells[("ours", high)].mean_overhead
    assert ours_high is not None, "ours must still produce correct runs at 1e-4"
    assert ours_high < 4.0 * max(ours_low, 0.2)

    matrix, b = _one_system(pcg_suite)
    benchmark.pedantic(
        lambda: run_pcg(matrix, b, scheme="ours", error_rate=1e-7, seed=5),
        rounds=1,
        iterations=1,
    )


def test_fig9_pcg_success(benchmark, pcg_suite, pcg_cells):
    report = render_pcg_cells(pcg_cells, schemes=SCHEMES, rates=PCG_ERROR_RATES)
    low, high = PCG_ERROR_RATES[0], PCG_ERROR_RATES[-1]
    paper_note = (
        "paper Fig. 9: ~100% for all at 1e-8; at the high end ours is 1.61x "
        "partial and 3.6x checkpointing | measured at "
        f"{high:g}: ours {pcg_cells[('ours', high)].success_rate:.0%}, "
        f"partial {pcg_cells[('partial', high)].success_rate:.0%}, "
        f"checkpoint {pcg_cells[('checkpoint', high)].success_rate:.0%}"
    )
    write_result("fig9_pcg_success", f"{report}\n{paper_note}")
    # Everyone succeeds at the lowest rate (paper: "roughly 100 %").
    for scheme in SCHEMES:
        assert pcg_cells[(scheme, low)].success_rate == 1.0
    # At the highest rate the proposed scheme dominates both baselines.
    ours = pcg_cells[("ours", high)].success_rate
    partial = pcg_cells[("partial", high)].success_rate
    checkpoint = pcg_cells[("checkpoint", high)].success_rate
    assert ours >= partial
    assert ours >= checkpoint
    # Our reduced-scale systems execute fewer ops per solve, so 1e-4 is a
    # harsher stress point than on the paper's testbed; the paper's
    # "1.61x / 3.6x more successes" comparison is checked one decade lower,
    # where the stress is comparable.
    stress = PCG_ERROR_RATES[-2]
    ours_stress = pcg_cells[("ours", stress)].success_rate
    assert ours_stress > 0.8
    assert ours_stress >= 1.5 * max(pcg_cells[("partial", stress)].success_rate, 1e-9)
    assert ours_stress >= 2.0 * max(
        pcg_cells[("checkpoint", stress)].success_rate, 1e-9
    )
    # Success is non-increasing in the error rate for the baselines.
    partial_rates = [pcg_cells[("partial", r)].success_rate for r in PCG_ERROR_RATES]
    assert partial_rates[0] >= partial_rates[-1]

    matrix, b = _one_system(pcg_suite)
    benchmark.pedantic(
        lambda: run_pcg(matrix, b, scheme="checkpoint", error_rate=1e-7, seed=6),
        rounds=1,
        iterations=1,
    )


def _one_system(pcg_suite):
    matrix = pcg_suite[0][1]
    rng = np.random.default_rng(9)
    return matrix, matrix.matvec(rng.standard_normal(matrix.n_rows))
