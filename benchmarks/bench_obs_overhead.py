"""Telemetry overhead benchmark: off ~free, streaming jsonl bounded.

Times a protected SpMV on a 10k-row random SPD matrix in four telemetry
configurations — ``off`` (the default), ``memory``, ``jsonl`` (synchronous
batched appends) and ``ring`` (jsonl behind the ring buffer's background
writer thread) — against a hand-inlined uninstrumented multiply (the
exact clean-path sequence of ``FaultTolerantSpMV.multiply`` with every
telemetry touchpoint removed).

Writes the human table to ``results/bench_obs_overhead.txt`` and the
machine-readable record — per-config timings, multipliers over baseline,
acceptance bounds and environment metadata — to
``results/BENCH_obs_overhead.json``.  ``REPRO_BENCH_SMOKE=1`` shrinks the
workload for CI and skips the timing-sensitive acceptance asserts.

Acceptance (ISSUE 8): ``off`` within 3% of the uninstrumented baseline;
``ring`` (jsonl streaming through the ring) within 2.0x.
"""

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import bench_env, write_json, write_result
from repro.core import FaultTolerantSpMV
from repro.machine import ExecutionMeter
from repro.obs import (
    InMemoryExporter,
    JsonlExporter,
    RingBufferExporter,
    Telemetry,
)
from repro.sparse import random_spd

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N_ROWS = 2_000 if SMOKE else 10_000
NNZ = 24_000 if SMOKE else 120_000
BLOCK_SIZE = 32
REPEATS = 5 if SMOKE else 30
CONFIGS = ("off", "memory", "jsonl", "ring")

#: Acceptance bounds (ISSUE 8): disabled telemetry within 3% of the
#: uninstrumented baseline; jsonl streamed through the ring within 2.0x.
MAX_OFF_OVERHEAD = 1.03
MAX_RING_OVERHEAD = 2.0


@pytest.fixture(scope="module")
def matrix():
    return random_spd(N_ROWS, NNZ, seed=17)


@pytest.fixture(scope="module")
def operand(matrix):
    return np.random.default_rng(18).standard_normal(matrix.n_cols)


def _best_of_interleaved(runners, repeats=REPEATS):
    """Best-of timings with the configurations interleaved round-robin.

    Sequential per-config loops fold clock-frequency drift into whichever
    config happens to run during the slow phase; interleaving gives every
    config a sample in every phase, so best-of compares like with like.
    """
    best = {name: float("inf") for name in runners}
    for _ in range(repeats):
        for name, fn in runners.items():
            t0 = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - t0)
    return best


def _baseline_multiply(detector, machine, b):
    """The clean-path protected multiply with zero telemetry touchpoints.

    Mirrors ``FaultTolerantSpMV.multiply`` for a fault-free run: detection
    graph, SpMV, operand checksum + norm, result checksums, syndrome
    comparison.  No spans, no guards, no wrapped kernels.
    """
    meter = ExecutionMeter(machine=machine)
    meter.run_graph(detector.detection_graph())
    r = detector.matrix.matvec(b)
    t1 = detector.operand_checksums(b)
    beta = detector.operand_norm(b)
    t2 = detector.checksum.result_checksums(r, kernel=detector.kernels)
    blocks = np.arange(detector.n_blocks, dtype=np.int64)
    with np.errstate(invalid="ignore", over="ignore"):
        thresholds = detector.bound.thresholds(beta, blocks)
    syndrome, exceeded = detector.kernels.compare_syndromes(t1, t2, thresholds)
    assert not exceeded.any()
    return r


def test_telemetry_overhead_bounds(matrix, operand, tmp_path):
    telemetries = {
        "off": None,
        "memory": Telemetry(exporter=InMemoryExporter()),
        "jsonl": Telemetry(exporter=JsonlExporter(tmp_path / "events.jsonl")),
        "ring": Telemetry(
            exporter=RingBufferExporter(
                sink=JsonlExporter(tmp_path / "ring-events.jsonl")
            )
        ),
    }
    operators = {
        name: FaultTolerantSpMV(matrix, block_size=BLOCK_SIZE, telemetry=tel)
        for name, tel in telemetries.items()
    }
    assert not operators["off"].telemetry.enabled

    detector = operators["off"].detector
    machine = operators["off"].machine
    runners = {
        "baseline": lambda: _baseline_multiply(detector, machine, operand),
    }
    for name in CONFIGS:
        runners[name] = lambda op=operators[name]: op.multiply(operand)
    for fn in runners.values():
        fn()  # warm every path before any timing
    operators["memory"].telemetry.exporter.clear()
    timings = _best_of_interleaved(runners)
    operators["memory"].telemetry.exporter.clear()  # don't hold the buffer

    multipliers = {name: timings[name] / timings["baseline"] for name in CONFIGS}
    for tel in telemetries.values():
        if tel is not None:
            tel.close()

    lines = [
        "Telemetry overhead: protected SpMV "
        f"(random SPD, n={N_ROWS}, nnz={NNZ}, block size {BLOCK_SIZE}, "
        f"best of {REPEATS})",
        "",
        f"{'configuration':<14} {'multiply [ms]':>14} {'vs baseline':>12}",
        f"{'baseline':<14} {1e3 * timings['baseline']:>14.3f} {'1.00x':>12}",
    ]
    for name in CONFIGS:
        lines.append(
            f"{name:<14} {1e3 * timings[name]:>14.3f} "
            f"{multipliers[name]:>11.2f}x"
        )
    lines += [
        "",
        "baseline = hand-inlined uninstrumented clean-path multiply;",
        "ring = JsonlExporter behind RingBufferExporter's writer thread;",
        f"acceptance: off <= {MAX_OFF_OVERHEAD:.2f}x, "
        f"ring <= {MAX_RING_OVERHEAD:.2f}x.",
    ]
    write_result("bench_obs_overhead", "\n".join(lines))
    write_json(
        "obs_overhead",
        {
            "workload": {
                "n_rows": N_ROWS,
                "nnz": NNZ,
                "block_size": BLOCK_SIZE,
                "repeats": REPEATS,
                "smoke": SMOKE,
            },
            "timings_ms": {
                name: 1e3 * value for name, value in timings.items()
            },
            "multipliers": multipliers,
            "acceptance": {
                "max_off_overhead": MAX_OFF_OVERHEAD,
                "max_ring_overhead": MAX_RING_OVERHEAD,
                "off_ok": multipliers["off"] <= MAX_OFF_OVERHEAD,
                "ring_ok": multipliers["ring"] <= MAX_RING_OVERHEAD,
            },
            "environment": bench_env(),
        },
    )

    if SMOKE:
        return  # smoke workloads are too small for stable multipliers
    assert multipliers["off"] <= MAX_OFF_OVERHEAD, (
        f"disabled telemetry costs {multipliers['off']:.3f}x the "
        f"uninstrumented baseline (bound {MAX_OFF_OVERHEAD}x)"
    )
    assert multipliers["ring"] <= MAX_RING_OVERHEAD, (
        f"streamed jsonl telemetry costs {multipliers['ring']:.3f}x the "
        f"uninstrumented baseline (bound {MAX_RING_OVERHEAD}x)"
    )
