"""Extension study — the full six-scheme PCG comparison.

Extends the paper's Figure 8/9 case study with the two extension schemes:
``dual`` (algebraic single-row repair) and ``hybrid`` (the proposed ABFT
multiply with checkpoint rollback as a safety net for uncorrectable
multiplies).  One moderate and one harsh error rate, on the case-study
subset.
"""

import numpy as np
from conftest import PCG_MAX_ITERATION_FACTOR, write_result

from repro.analysis import format_table, mean, percent, runtime_overhead
from repro.solvers import FtPcgOptions, run_pcg

SCHEMES = ("unprotected", "ours", "dual", "hybrid", "partial", "checkpoint")
RATES = (1e-6, 3e-5)
RUNS = 4
MATRICES = ("nos3", "bcsstk21")


def test_six_scheme_pcg(benchmark, pcg_suite):
    subset = [(s, m) for s, m in pcg_suite if s.name in MATRICES]
    options = FtPcgOptions(max_iteration_factor=PCG_MAX_ITERATION_FACTOR)

    baselines = {}
    rhs = {}
    for spec, matrix in subset:
        rng = np.random.default_rng(31)
        rhs[spec.name] = matrix.matvec(rng.standard_normal(matrix.n_rows))
        baselines[spec.name] = run_pcg(
            matrix, rhs[spec.name], scheme="unprotected", error_rate=0.0,
            seed=0, options=options,
        ).seconds

    rows = []
    stats = {}
    for scheme in SCHEMES:
        cells = []
        for rate in RATES:
            correct = 0
            overheads = []
            for spec, matrix in subset:
                for run in range(RUNS):
                    result = run_pcg(
                        matrix, rhs[spec.name], scheme=scheme, error_rate=rate,
                        seed=100 * run + 13, options=options,
                    )
                    correct += result.correct
                    if result.correct:
                        overheads.append(
                            runtime_overhead(result.seconds, baselines[spec.name])
                        )
            total = RUNS * len(subset)
            overhead = mean(overheads) if overheads else None
            stats[(scheme, rate)] = (correct / total, overhead)
            cells.append(f"{correct}/{total} ({percent(overhead)})")
        rows.append((scheme,) + tuple(cells))

    table = format_table(
        ("scheme",) + tuple(f"lambda={r:g}" for r in RATES),
        rows,
        title="Extension — six-scheme PCG case study: correct runs (overhead)",
    )
    write_result("ext_pcg_schemes", table)

    # The ABFT family (ours/dual/hybrid) dominates the related work at the
    # harsh rate, and the hybrid never does worse than plain checkpointing.
    harsh = RATES[-1]
    for scheme in ("ours", "dual", "hybrid"):
        assert stats[(scheme, harsh)][0] >= stats[("partial", harsh)][0]
        assert stats[(scheme, harsh)][0] >= stats[("checkpoint", harsh)][0]
    assert stats[("hybrid", harsh)][0] >= stats[("checkpoint", harsh)][0]

    matrix = subset[0][1]
    benchmark.pedantic(
        lambda: run_pcg(
            matrix, rhs[subset[0][0].name], scheme="dual", error_rate=1e-6,
            seed=5, options=options,
        ),
        rounds=1,
        iterations=1,
    )
