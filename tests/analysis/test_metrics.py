"""Unit tests for evaluation metrics."""

import pytest

from repro.analysis import (
    ConfusionCounts,
    improvement_factor,
    mean,
    relative_reduction,
    runtime_overhead,
    success_rate,
)
from repro.errors import ConfigurationError


def test_f1_paper_formula():
    counts = ConfusionCounts(true_positives=80, false_negatives=10, false_positives=10)
    assert counts.f1 == pytest.approx(2 * 80 / (2 * 80 + 10 + 10))


def test_f1_perfect_detector():
    assert ConfusionCounts(true_positives=10).f1 == 1.0


def test_f1_empty_tally_is_zero():
    assert ConfusionCounts().f1 == 0.0


def test_f1_all_missed():
    assert ConfusionCounts(false_negatives=5).f1 == 0.0


def test_precision_recall():
    counts = ConfusionCounts(true_positives=6, false_negatives=2, false_positives=2)
    assert counts.precision == pytest.approx(0.75)
    assert counts.recall == pytest.approx(0.75)
    assert ConfusionCounts().precision == 0.0
    assert ConfusionCounts().recall == 0.0


def test_merge_adds_fields():
    a = ConfusionCounts(1, 2, 3, 4)
    b = ConfusionCounts(10, 20, 30, 40)
    merged = a.merge(b)
    assert merged == ConfusionCounts(11, 22, 33, 44)
    assert merged.trials == 110


def test_runtime_overhead_definition():
    assert runtime_overhead(1.5, 1.0) == pytest.approx(0.5)
    assert runtime_overhead(1.0, 1.0) == 0.0


def test_runtime_overhead_rejects_zero_baseline():
    with pytest.raises(ConfigurationError):
        runtime_overhead(1.0, 0.0)


def test_mean():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    with pytest.raises(ConfigurationError):
        mean([])


def test_success_rate():
    assert success_rate([True, True, False, False]) == 0.5
    with pytest.raises(ConfigurationError):
        success_rate([])


def test_relative_reduction():
    assert relative_reduction(0.5, 1.0) == pytest.approx(0.5)
    with pytest.raises(ConfigurationError):
        relative_reduction(1.0, 0.0)


def test_improvement_factor():
    assert improvement_factor(3.6, 1.0) == pytest.approx(3.6)
    with pytest.raises(ConfigurationError):
        improvement_factor(1.0, 0.0)
