"""Fixture: public selector-taking functions with no validation path."""


def make_detector(matrix, kind="block"):  # MARK:ABFT006
    if kind == "block":
        return ("block", matrix)
    return ("dense", matrix)


def pick_scheme(matrix, scheme: str = "abft"):  # MARK:ABFT006
    return {"abft": matrix, "dense": None}.get(scheme)
