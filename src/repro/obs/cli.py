"""Command-line entry point: ``python -m repro.obs <command>``.

Commands:

* ``summarize <events.jsonl>`` — render a JSONL event log (written by the
  ``"jsonl"`` exporter, usually via ``REPRO_OBS=jsonl``) as the
  human-readable protocol summary (``--json`` emits the machine-readable
  aggregate instead);
* ``report <events.jsonl> [...]`` — markdown campaign report, one
  section per log (``--output`` writes to a file);
* ``expose <events.jsonl>`` — replay the log into a registry and print
  it in OpenMetrics text exposition format;
* ``exporters`` — list registered exporter names.

Corrupt or truncated JSONL lines (crashed writers, torn appends) are
skipped with a counted warning on stderr — the log of a crashed run is
exactly the one worth reading.

Exit codes:

* 0 — output rendered (possibly with skipped-line warnings);
* 2 — usage or input errors (missing file).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.exporters import available_exporters
from repro.obs.expose import registry_from_events, render_openmetrics
from repro.obs.report import render_report
from repro.obs.summary import (
    EventSummary,
    aggregate_events,
    load_events,
    render_summary,
    summary_as_dict,
)

EXIT_OK = 0
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="ABFT protocol telemetry tools",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    summarize = commands.add_parser(
        "summarize", help="render a JSONL event log as a text summary"
    )
    summarize.add_argument("events", help="path to the events.jsonl file")
    summarize.add_argument(
        "--width", type=int, default=48, help="bar width of the span breakdown"
    )
    summarize.add_argument(
        "--json",
        action="store_true",
        help="emit the aggregate as JSON instead of text",
    )

    report = commands.add_parser(
        "report", help="render a markdown campaign report"
    )
    report.add_argument(
        "events", nargs="+", help="event logs, one report section each"
    )
    report.add_argument(
        "--output", help="write the report here instead of stdout"
    )

    expose = commands.add_parser(
        "expose", help="replay a log and print OpenMetrics exposition text"
    )
    expose.add_argument("events", help="path to the events.jsonl file")

    commands.add_parser("exporters", help="list registered exporter names")
    return parser


def _load(path: str) -> Tuple[List[dict], int]:
    """Non-strict load with the skipped-line warning on stderr."""
    events, skipped = load_events(path)
    if skipped:
        print(
            f"warning: {path}: skipped {skipped} corrupt line(s)",
            file=sys.stderr,
        )
    return events, skipped


def _summaries(paths: Sequence[str]) -> List[Tuple[str, EventSummary]]:
    sections = []
    for path in paths:
        events, skipped = _load(path)
        summary = aggregate_events(events)
        summary.skipped_lines = skipped
        sections.append((Path(path).name, summary))
    return sections


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "exporters":
        for name in available_exporters():
            print(name)
        return EXIT_OK
    try:
        if args.command == "summarize":
            events, skipped = _load(args.events)
            if args.json:
                summary = aggregate_events(events)
                summary.skipped_lines = skipped
                print(json.dumps(summary_as_dict(summary), indent=2))
            else:
                print(render_summary(events, width=args.width, skipped=skipped))
        elif args.command == "report":
            text = render_report(_summaries(args.events))
            if args.output:
                Path(args.output).write_text(text, encoding="utf-8")
            else:
                print(text, end="")
        elif args.command == "expose":
            events, _ = _load(args.events)
            print(render_openmetrics(registry_from_events(events)), end="")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except BrokenPipeError:  # e.g. `... summarize log | head`
        return EXIT_OK
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
