"""Unit tests for injection campaigns."""

import pytest

from repro.analysis import run_correction_campaign, run_coverage_campaign
from repro.errors import ConfigurationError
from repro.sparse import random_spd


@pytest.fixture(scope="module")
def matrix():
    return random_spd(400, 4000, seed=81)


def test_coverage_block_detector_dominates_dense(matrix):
    block = run_coverage_campaign(matrix, "block", trials=120, sigma=1e-12, seed=1)
    dense = run_coverage_campaign(matrix, "dense", trials=120, sigma=1e-12, seed=1)
    assert block.f1 > dense.f1  # the Figure 7 relationship
    assert block.f1 > 0.7
    assert dense.f1 < 0.6


def test_coverage_improves_with_sigma(matrix):
    """Bigger minimal significance -> easier errors -> higher F1 (Figure 7)."""
    f1s = [
        run_coverage_campaign(matrix, "block", trials=120, sigma=sigma, seed=2).f1
        for sigma in (1e-12, 1e-8)
    ]
    assert f1s[1] >= f1s[0]


def test_coverage_counts_are_consistent(matrix):
    result = run_coverage_campaign(matrix, "block", trials=100, sigma=1e-10, seed=3)
    counts = result.counts
    # Every trial contributes exactly one injected-error verdict.
    assert counts.true_positives + counts.false_negatives == 100
    # Clean evaluations: one per trial.
    assert counts.true_negatives <= 100


def test_coverage_deterministic(matrix):
    a = run_coverage_campaign(matrix, "block", trials=60, sigma=1e-10, seed=4)
    b = run_coverage_campaign(matrix, "block", trials=60, sigma=1e-10, seed=4)
    assert a.counts == b.counts


def test_coverage_validation(matrix):
    with pytest.raises(ConfigurationError):
        run_coverage_campaign(matrix, "block", trials=0)
    with pytest.raises(ConfigurationError):
        run_coverage_campaign(matrix, "bogus", trials=10)


def test_correction_campaign_ordering(matrix):
    ours = run_correction_campaign(matrix, "ours", trials=10, seed=5)
    partial = run_correction_campaign(matrix, "partial", trials=10, seed=5)
    complete = run_correction_campaign(matrix, "complete", trials=10, seed=5)
    assert ours.overhead < partial.overhead
    assert ours.overhead < complete.overhead
    assert ours.overhead > 0


def test_correction_campaign_validation(matrix):
    with pytest.raises(ConfigurationError):
        run_correction_campaign(matrix, "ours", trials=0)
    with pytest.raises(ConfigurationError):
        run_correction_campaign(matrix, "bogus", trials=5)


def test_correction_campaign_deterministic(matrix):
    a = run_correction_campaign(matrix, "ours", trials=5, seed=6)
    b = run_correction_campaign(matrix, "ours", trials=5, seed=6)
    assert a.mean_protected_seconds == b.mean_protected_seconds
