"""Complete-recomputation baseline (Shantharam et al. [31]).

Detection is the dense check; on error the *entire* SpMV is recomputed and
re-checked.  Correction cost therefore equals a full multiply plus another
dense check per round — the upper baseline of the paper's Figure 6.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.dense_check import DenseChecksum
from repro.baselines.scheme import BaselineSpmvResult
from repro.core.corrector import TamperHook
from repro.machine import ExecutionMeter, Machine
from repro.sparse.csr import CsrMatrix


class CompleteRecomputationSpMV:
    """Dense check + full recomputation on error."""

    name = "complete-recomputation"

    def __init__(
        self,
        matrix: CsrMatrix,
        machine: Optional[Machine] = None,
        max_rounds: int = 8,
        bound_scale: float = 1.0,
    ) -> None:
        self.matrix = matrix
        self.machine = machine or Machine()
        self.max_rounds = max_rounds
        self.checker = DenseChecksum(matrix, bound_scale=bound_scale)

    def multiply(
        self,
        b: np.ndarray,
        tamper: Optional[TamperHook] = None,
        meter: Optional[ExecutionMeter] = None,
    ) -> BaselineSpmvResult:
        """One protected multiply (same driver contract as the core scheme)."""
        matrix = self.matrix
        meter = meter if meter is not None else ExecutionMeter(machine=self.machine)
        start_seconds, start_flops = meter.snapshot()

        meter.run_graph(self.checker.detection_graph())
        r = matrix.matvec(b)
        if tamper is not None:
            tamper("result", r, 2.0 * matrix.nnz)
        report = self.checker.check(b, r, tamper)

        detections = [report.detected]
        corrections: list[tuple[int, int]] = []
        rounds = 0
        exhausted = False
        while report.detected:
            if rounds >= self.max_rounds:
                exhausted = True
                break
            rounds += 1
            # Full recomputation plus a complete re-check.
            meter.run_graph(self.checker.detection_graph())
            r = matrix.matvec(b)
            if tamper is not None:
                tamper("corrected", r, 2.0 * matrix.nnz)
            corrections.append((0, matrix.n_rows))
            report = self.checker.check(b, r, tamper)
            detections.append(report.detected)

        seconds, flops = meter.snapshot()
        return BaselineSpmvResult(
            value=r,
            detections=tuple(detections),
            corrections=tuple(corrections),
            rounds=rounds,
            seconds=seconds - start_seconds,
            flops=flops - start_flops,
            exhausted=exhausted,
        )
