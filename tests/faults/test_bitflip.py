"""Unit tests for the bit-flip burst model."""

import math

import numpy as np
import pytest

from repro.errors import InjectionError
from repro.faults import (
    Burst,
    apply_bitmask,
    bits_to_float,
    corrupt_value,
    float_to_bits,
    sample_burst,
)


def test_float_bits_round_trip():
    for value in [0.0, 1.0, -1.5, 3.141592653589793, 1e-300, -1e300]:
        assert bits_to_float(float_to_bits(value)) == value


def test_float_to_bits_known_patterns():
    assert float_to_bits(0.0) == 0
    assert float_to_bits(1.0) == 0x3FF0000000000000
    assert float_to_bits(-0.0) == 1 << 63


def test_bits_to_float_rejects_out_of_range():
    with pytest.raises(InjectionError):
        bits_to_float(2**64)
    with pytest.raises(InjectionError):
        bits_to_float(-1)


def test_apply_bitmask_is_involution():
    value = 42.75
    mask = 0b1011 << 20
    corrupted = apply_bitmask(value, mask)
    assert corrupted != value
    assert apply_bitmask(corrupted, mask) == value


def test_apply_bitmask_rejects_bad_mask():
    with pytest.raises(InjectionError):
        apply_bitmask(1.0, 2**64)


def test_sign_bit_flip_negates():
    assert apply_bitmask(7.25, 1 << 63) == -7.25


def test_burst_mask_width_and_position():
    burst = Burst(position=4, width=3)
    assert burst.mask == 0b111 << 4
    assert bin(burst.mask).count("1") == 3


def test_burst_clips_at_bit_63():
    burst = Burst(position=62, width=10)
    assert burst.mask == (1 << 63) | (1 << 62)


def test_burst_validation():
    with pytest.raises(InjectionError):
        Burst(position=64, width=1)
    with pytest.raises(InjectionError):
        Burst(position=0, width=0)


def test_burst_apply_changes_value():
    burst = Burst(position=0, width=1)
    assert burst.apply(1.0) != 1.0


def test_sample_burst_width_distribution():
    rng = np.random.default_rng(0)
    widths = [sample_burst(rng).width for _ in range(4000)]
    assert min(widths) >= 1
    assert max(widths) <= 64
    # Mean 3, variance 2 per the paper; wide tolerance for sampling noise.
    assert abs(np.mean(widths) - 3.0) < 0.15
    assert abs(np.var(widths) - 2.0) < 0.4


def test_sample_burst_positions_cover_word():
    rng = np.random.default_rng(1)
    positions = {sample_burst(rng).position for _ in range(3000)}
    assert min(positions) == 0
    assert max(positions) == 63


def test_sample_burst_rejects_negative_variance():
    with pytest.raises(InjectionError):
        sample_burst(np.random.default_rng(0), variance_bits=-1.0)


def test_corrupt_value_returns_burst_consistent_result():
    rng = np.random.default_rng(2)
    original = 123.456
    corrupted, burst = corrupt_value(original, rng)
    assert burst.apply(original) == corrupted or math.isnan(corrupted)


def test_corrupt_value_can_produce_nonfinite():
    rng = np.random.default_rng(3)
    saw_nonfinite = False
    for _ in range(2000):
        corrupted, _ = corrupt_value(1.0, rng)
        if not math.isfinite(corrupted):
            saw_nonfinite = True
            break
    assert saw_nonfinite, "exponent bursts should occasionally produce inf/NaN"
