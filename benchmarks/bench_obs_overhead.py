"""Telemetry overhead benchmark: the disabled path must be ~free.

Times a protected SpMV on a 10k-row random SPD matrix in three telemetry
configurations — ``off`` (the default), ``memory`` and ``jsonl`` — against
a hand-inlined uninstrumented multiply (the exact clean-path sequence of
``FaultTolerantSpMV.multiply`` with every telemetry touchpoint removed).
Records the table to ``results/bench_obs_overhead.txt`` and enforces the
acceptance bound: with telemetry off, the instrumented driver stays
within 3% of the uninstrumented baseline.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.core import FaultTolerantSpMV
from repro.machine import ExecutionMeter
from repro.obs import InMemoryExporter, JsonlExporter, Telemetry
from repro.sparse import random_spd

N_ROWS = 10_000
NNZ = 120_000
BLOCK_SIZE = 32
REPEATS = 30
#: Acceptance bound: disabled-telemetry overhead over the uninstrumented
#: baseline (ISSUE: "within 3%").
MAX_OFF_OVERHEAD = 1.03


@pytest.fixture(scope="module")
def matrix():
    return random_spd(N_ROWS, NNZ, seed=17)


@pytest.fixture(scope="module")
def operand(matrix):
    return np.random.default_rng(18).standard_normal(matrix.n_cols)


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _baseline_multiply(detector, machine, b):
    """The clean-path protected multiply with zero telemetry touchpoints.

    Mirrors ``FaultTolerantSpMV.multiply`` for a fault-free run: detection
    graph, SpMV, operand checksum + norm, result checksums, syndrome
    comparison.  No spans, no guards, no wrapped kernels.
    """
    meter = ExecutionMeter(machine=machine)
    meter.run_graph(detector.detection_graph())
    r = detector.matrix.matvec(b)
    t1 = detector.operand_checksums(b)
    beta = detector.operand_norm(b)
    t2 = detector.checksum.result_checksums(r, kernel=detector.kernels)
    blocks = np.arange(detector.n_blocks, dtype=np.int64)
    with np.errstate(invalid="ignore", over="ignore"):
        thresholds = detector.bound.thresholds(beta, blocks)
    syndrome, exceeded = detector.kernels.compare_syndromes(t1, t2, thresholds)
    assert not exceeded.any()
    return r


def test_disabled_telemetry_is_free(matrix, operand, tmp_path):
    operators = {
        "off": FaultTolerantSpMV(matrix, block_size=BLOCK_SIZE),
        "memory": FaultTolerantSpMV(
            matrix, block_size=BLOCK_SIZE,
            telemetry=Telemetry(exporter=InMemoryExporter()),
        ),
        "jsonl": FaultTolerantSpMV(
            matrix, block_size=BLOCK_SIZE,
            telemetry=Telemetry(exporter=JsonlExporter(tmp_path / "events.jsonl")),
        ),
    }
    assert not operators["off"].telemetry.enabled

    detector = operators["off"].detector
    machine = operators["off"].machine
    timings = {
        "baseline": _best_of(lambda: _baseline_multiply(detector, machine, operand)),
    }
    for name, operator in operators.items():
        timings[name] = _best_of(lambda op=operator: op.multiply(operand))
        if name == "memory":
            operator.telemetry.exporter.clear()  # don't let the buffer grow

    overheads = {
        name: timings[name] / timings["baseline"]
        for name in ("off", "memory", "jsonl")
    }
    lines = [
        "Telemetry overhead: protected SpMV "
        f"(random SPD, n={N_ROWS}, nnz={NNZ}, block size {BLOCK_SIZE}, "
        f"best of {REPEATS})",
        "",
        f"{'configuration':<14} {'multiply [ms]':>14} {'vs baseline':>12}",
        f"{'baseline':<14} {1e3 * timings['baseline']:>14.3f} {'1.00x':>12}",
    ]
    for name in ("off", "memory", "jsonl"):
        lines.append(
            f"{name:<14} {1e3 * timings[name]:>14.3f} "
            f"{overheads[name]:>11.2f}x"
        )
    lines += [
        "",
        "baseline = hand-inlined uninstrumented clean-path multiply;",
        f"acceptance: 'off' within {MAX_OFF_OVERHEAD:.2f}x of baseline.",
    ]
    write_result("bench_obs_overhead", "\n".join(lines))

    assert overheads["off"] <= MAX_OFF_OVERHEAD, (
        f"disabled telemetry costs {overheads['off']:.3f}x the uninstrumented "
        f"baseline (bound {MAX_OFF_OVERHEAD}x)"
    )
