"""Ablation — bound tightness vs coverage (the Section III-C trade-off).

"Error bounds that were chosen smaller than the actual rounding error lead
to false positive error detections ... Too large bounds increase the
number of undetected errors."  Sweeping a multiplicative scale on the
paper's sparse bound maps that frontier: scale << 1 floods the campaign
with false positives (and spurious corrections); scale >> 1 bleeds recall.
"""

import numpy as np
from conftest import write_result

from repro.analysis import ConfusionCounts, format_table
from repro.core import AbftConfig, BlockAbftDetector
from repro.faults import FaultInjector
from repro.sparse import suite_matrix

SCALES = (1e-4, 1e-2, 1.0, 1e2, 1e4, 1e8)
TRIALS = 150
SIGMA = 1e-12


def _campaign_with_scale(matrix, scale: float, trials: int = TRIALS) -> ConfusionCounts:
    """Coverage campaign against the sparse bound scaled by ``scale``."""
    detector = BlockAbftDetector(matrix, AbftConfig(block_size=32, bound_scale=scale))
    rng = np.random.default_rng(61)
    injector = FaultInjector(rng=rng)
    counts = ConfusionCounts()
    for _ in range(trials):
        b = rng.standard_normal(matrix.n_cols)
        r = matrix.matvec(b)
        clean = detector.detect(b, r)
        counts.false_positives += int(clean.flagged.size)
        if clean.clean:
            counts.true_negatives += 1
        record = injector.corrupt_random_element(r, sigma=SIGMA)
        report = detector.detect(b, r)
        target = record.index // 32
        flagged = set(int(x) for x in report.flagged)
        if target in flagged:
            counts.true_positives += 1
        else:
            counts.false_negatives += 1
        counts.false_positives += len(flagged - {target})
    return counts


def test_bound_scale_frontier(benchmark):
    matrix = suite_matrix("bcsstk13")
    rows = []
    stats = {}
    for scale in SCALES:
        counts = _campaign_with_scale(matrix, scale)
        stats[scale] = counts
        rows.append(
            (
                f"{scale:g}",
                f"{counts.f1:.3f}",
                f"{counts.recall:.3f}",
                counts.false_positives,
                counts.false_negatives,
            )
        )
    table = format_table(
        ("bound scale", "F1", "recall", "false positives", "false negatives"),
        rows,
        title=f"Ablation — bound tightness frontier (bcsstk13, sigma={SIGMA:g}, "
        f"{TRIALS} trials)",
    )
    write_result("ablation_bound_scale", table)

    # The derived bound (scale 1) is close to the F1 peak, with a visible
    # safety margin: tightening by ~2 orders still gains recall before
    # false positives appear — the worst-case analysis is conservative,
    # which is exactly what the empirical-bound extension exploits.
    best_scale = max(stats, key=lambda s: stats[s].f1)
    assert best_scale <= 1.0
    assert stats[1.0].f1 >= 0.9 * stats[best_scale].f1
    # Tiny scales eventually explode false positives; huge scales explode
    # misses.
    assert stats[1e-4].false_positives > stats[1.0].false_positives
    assert stats[1e8].false_negatives > stats[1.0].false_negatives

    benchmark.pedantic(
        lambda: _campaign_with_scale(matrix, 1.0, trials=30), rounds=1, iterations=1
    )
