"""ASCII chart rendering for figure data (no plotting dependencies).

The paper's figures are bar/line charts; in a terminal-only environment
these renderers give the benches an actual visual, next to the numeric
tables: horizontal bars for per-matrix comparisons (Figures 5-6), grouped
bars for multi-series data, and a column curve for sweeps (Figure 4).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import ConfigurationError

#: Eighth-block characters for sub-character bar resolution.
_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, peak: float, width: int) -> str:
    """A horizontal bar of ``value/peak`` scaled to ``width`` cells."""
    if peak <= 0:
        return ""
    cells = max(0.0, value / peak) * width
    full = int(cells)
    remainder = int((cells - full) * 8)
    bar = "█" * full
    if remainder and full < width:
        bar += _BLOCKS[remainder]
    return bar


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str | None = None,
    formatter=lambda v: f"{v:.3g}",
) -> str:
    """Horizontal bar chart, one row per label.

    Args:
        labels: row names.
        values: one non-negative value per label.
        width: bar area width in characters.
        title: optional heading line.
        formatter: value-to-string for the right-hand annotation.
    """
    if len(labels) != len(values):
        raise ConfigurationError(
            f"labels/values length mismatch: {len(labels)} vs {len(values)}"
        )
    if width < 5:
        raise ConfigurationError(f"width must be >= 5, got {width}")
    if not labels:
        return title or "(empty chart)"
    peak = max(max(values), 1e-300)
    name_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        lines.append(
            f"{label:<{name_width}s} {_bar(value, peak, width):<{width}s} "
            f"{formatter(value)}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    width: int = 40,
    title: str | None = None,
    formatter=lambda v: f"{v:.3g}",
) -> str:
    """Grouped horizontal bars: per label, one bar per series."""
    for name, values in series.items():
        if len(values) != len(labels):
            raise ConfigurationError(
                f"series {name!r} has {len(values)} values for {len(labels)} labels"
            )
    if not labels or not series:
        return title or "(empty chart)"
    peak = max(max(values) for values in series.values())
    peak = max(peak, 1e-300)
    name_width = max(
        [len(label) for label in labels] + [len(name) + 2 for name in series]
    )
    lines = [title] if title else []
    for index, label in enumerate(labels):
        lines.append(f"{label}:")
        for name, values in series.items():
            value = values[index]
            lines.append(
                f"  {name:<{name_width}s} {_bar(value, peak, width):<{width}s} "
                f"{formatter(value)}"
            )
    return "\n".join(lines)


def column_curve(
    xs: Sequence[object],
    ys: Sequence[float],
    height: int = 10,
    title: str | None = None,
    formatter=lambda v: f"{v:.3g}",
) -> str:
    """Vertical column chart (one column per x) — the Figure 4 sweep shape.

    Columns scale to the maximum y; the minimum column is marked with ``▼``
    above it so the sweep's optimum is visible at a glance.
    """
    if len(xs) != len(ys):
        raise ConfigurationError(f"xs/ys length mismatch: {len(xs)} vs {len(ys)}")
    if height < 2:
        raise ConfigurationError(f"height must be >= 2, got {height}")
    if not xs:
        return title or "(empty chart)"
    peak = max(max(ys), 1e-300)
    col_width = max(len(str(x)) for x in xs) + 1
    levels = [max(0.0, y / peak) * height for y in ys]
    best = min(range(len(ys)), key=ys.__getitem__)
    lines = [title] if title else []
    marker_row = "".join(
        ("▼" if i == best else " ").center(col_width) for i in range(len(xs))
    )
    lines.append(marker_row)
    for row in range(height, 0, -1):
        cells = []
        for level in levels:
            if level >= row:
                cells.append("█".center(col_width))
            elif level >= row - 0.5:
                cells.append("▄".center(col_width))
            else:
                cells.append(" ".center(col_width))
        lines.append("".join(cells))
    lines.append("".join(str(x).center(col_width) for x in xs))
    lines.append(
        f"min {formatter(min(ys))} at {xs[best]}; max {formatter(max(ys))}"
    )
    return "\n".join(lines)
