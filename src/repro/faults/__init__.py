"""Fault-injection substrate: bit-flip bursts, significance, arrival process.

Implements the paper's error model (Section IV-A): transient faults corrupt
arithmetic outputs with bursts of bidirectional bit flips; error events
arrive as a Poisson process in operation count (Section VI).
"""

from repro.faults.bitflip import (
    BURST_MEAN_BITS,
    BURST_VARIANCE_BITS,
    Burst,
    apply_bitmask,
    bits_to_float,
    corrupt_value,
    float_to_bits,
    sample_burst,
)
from repro.faults.injector import FaultInjector, Injection
from repro.faults.models import (
    BurstModel,
    ExponentModel,
    FaultModel,
    MantissaModel,
    ScaledNoiseModel,
    SingleBitModel,
    StuckSignModel,
    make_fault_model,
    model_names,
)
from repro.faults.process import ErrorProcess
from repro.faults.significance import corrupt_significantly, is_significant

__all__ = [
    "BURST_MEAN_BITS",
    "BURST_VARIANCE_BITS",
    "Burst",
    "float_to_bits",
    "bits_to_float",
    "apply_bitmask",
    "sample_burst",
    "corrupt_value",
    "is_significant",
    "corrupt_significantly",
    "FaultInjector",
    "FaultModel",
    "BurstModel",
    "SingleBitModel",
    "ExponentModel",
    "MantissaModel",
    "ScaledNoiseModel",
    "StuckSignModel",
    "make_fault_model",
    "model_names",
    "Injection",
    "ErrorProcess",
]
