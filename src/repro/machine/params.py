"""Device parameters for the simulated heterogeneous machine.

The paper measures runtime on a dual-Xeon host with Tesla K80 GPUs; every
experiment uses one CPU core plus one GPU (Section IV-B).  We replace that
testbed with a deterministic performance model whose three constants capture
the effects that shape the paper's overhead curves:

* ``throughput`` — effective device throughput in FLOP/s.  Sparse kernels
  are memory-bound, so this is calibrated to a K80's *effective* SpMV rate
  (tens of GFLOP/s), not its peak.
* ``launch_overhead`` — fixed cost per kernel launch.  This is what makes
  small matrices show large relative overheads (Figures 5-6: overhead
  shrinks as NNZ grows).
* ``sync_time`` — cost of one sequential dependence step at kernel
  granularity (a reduction level / barrier).  This is what penalizes large
  block sizes in Figure 4: an inner product over ``b_s`` elements needs
  ``ceil(log2(b_s))`` sequential reduction levels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DeviceParams:
    """Performance constants of one simulated accelerator.

    Attributes:
        name: human-readable device label.
        throughput: sustained FLOP/s shared by all concurrently running
            kernels (work-conserving).
        launch_overhead: seconds of fixed cost before a kernel makes
            progress.
        sync_time: seconds per sequential dependence step (reduction level,
            device-wide barrier).
        streams: number of kernels that may execute concurrently; extra
            ready kernels wait (the paper overlaps ``Ab`` with ``Cb`` on
            separate streams, so the default allows that).
        concurrency_boost: throughput gained per extra concurrent kernel —
            ``k`` co-scheduled kernels share ``throughput * (1 + boost*(k-1))``.
            Memory-bound kernels hide each other's latency, so co-running
            two SpMV-class kernels costs less than 2x (this is what puts
            the paper's block-size-1 overhead at ~84 %, not ~100 %).
    """

    name: str = "tesla-k80-model"
    throughput: float = 6.0e9
    launch_overhead: float = 6.0e-6
    sync_time: float = 0.5e-6
    streams: int = 4
    concurrency_boost: float = 0.2

    def __post_init__(self) -> None:
        if self.throughput <= 0:
            raise ConfigurationError(f"throughput must be positive, got {self.throughput}")
        if self.launch_overhead < 0:
            raise ConfigurationError(
                f"launch_overhead must be non-negative, got {self.launch_overhead}"
            )
        if self.sync_time < 0:
            raise ConfigurationError(f"sync_time must be non-negative, got {self.sync_time}")
        if self.streams < 1:
            raise ConfigurationError(f"streams must be >= 1, got {self.streams}")
        if self.concurrency_boost < 0:
            raise ConfigurationError(
                f"concurrency_boost must be >= 0, got {self.concurrency_boost}"
            )


#: Default calibration: effective memory-bound K80 throughput with
#: microsecond-scale launch/sync costs (CUDA 7.5 era).
TESLA_K80 = DeviceParams()

#: A serializing device: one stream, so nothing overlaps.  Used by the
#: overlap ablation (DESIGN.md, decision 4).
TESLA_K80_NO_OVERLAP = DeviceParams(name="tesla-k80-serial", streams=1)
