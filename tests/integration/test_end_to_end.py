"""Integration tests: cross-module scenarios exercised end to end."""

import io

import numpy as np
import pytest

from repro.baselines import CompleteRecomputationSpMV, PartialRecomputationSpMV
from repro.core import (
    AbftConfig,
    BlockAbftDetector,
    DualChecksumSpMV,
    FaultTolerantSpMV,
)
from repro.faults import ErrorProcess, FaultInjector, make_fault_model
from repro.machine import ExecutionMeter, Machine, render_gantt
from repro.solvers import make_preconditioner, pcg, run_pcg
from repro.sparse import (
    matrix_market_string,
    poisson2d,
    read_matrix_market,
    reverse_cuthill_mckee,
    suite_matrix,
    symmetric_permute,
)


def test_matrix_market_round_trip_preserves_abft_behaviour(tmp_path):
    """Serialize a matrix, reload it, and verify the detector still works."""
    original = suite_matrix("nos3")
    reloaded = read_matrix_market(io.StringIO(matrix_market_string(original)))
    assert reloaded == original
    detector = BlockAbftDetector(reloaded)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(reloaded.n_cols)
    r = reloaded.matvec(b)
    assert detector.detect(b, r).clean
    r[100] += 1.0
    assert 100 // 32 in detector.detect(b, r).flagged


def test_rcm_then_protected_pcg_pipeline():
    """Reorder a scattered system, then solve it fault-tolerantly."""
    from repro.sparse import random_permutation

    grid = poisson2d(20)
    scrambled = symmetric_permute(grid, random_permutation(grid.n_rows, seed=1))
    restored = symmetric_permute(scrambled, reverse_cuthill_mckee(scrambled))
    rng = np.random.default_rng(1)
    x_true = rng.standard_normal(restored.n_rows)
    b = restored.matvec(x_true)
    result = run_pcg(restored, b, scheme="ours", error_rate=1e-6, seed=2)
    assert result.correct
    np.testing.assert_allclose(result.x, x_true, rtol=1e-3, atol=1e-5)


def test_all_spmv_schemes_agree_on_corrected_value():
    """Under the same injected error every scheme must deliver A b."""
    matrix = suite_matrix("nos3")
    rng = np.random.default_rng(3)
    b = rng.standard_normal(matrix.n_cols)
    reference = matrix.matvec(b)
    magnitude = 100.0 * float(np.linalg.norm(b))

    def make_hook():
        state = {"armed": True}

        def hook(stage, data, work):
            if stage == "result" and state["armed"]:
                data[500] += magnitude
                state["armed"] = False

        return hook

    ours = FaultTolerantSpMV(matrix).multiply(b, tamper=make_hook())
    dual = DualChecksumSpMV(matrix).multiply(b, tamper=make_hook())
    partial = PartialRecomputationSpMV(matrix).multiply(b, tamper=make_hook())
    complete = CompleteRecomputationSpMV(matrix).multiply(b, tamper=make_hook())
    for result in (ours, partial, complete):
        np.testing.assert_array_equal(result.value, reference)
    np.testing.assert_allclose(dual.value, reference, rtol=1e-12)


def test_protected_pcg_with_every_preconditioner():
    matrix = poisson2d(12)
    rng = np.random.default_rng(4)
    b = matrix.matvec(rng.standard_normal(matrix.n_rows))
    from repro.solvers import FtPcgOptions

    for kind in ("identity", "jacobi"):
        result = run_pcg(
            matrix, b, scheme="ours", error_rate=1e-6, seed=5,
            options=FtPcgOptions(preconditioner=kind),
        )
        assert result.correct, kind


def test_fault_model_sweep_through_protected_spmv():
    """Every registered fault model flows through the full multiply."""
    matrix = suite_matrix("nos3")
    rng = np.random.default_rng(6)
    b = rng.standard_normal(matrix.n_cols)
    reference = matrix.matvec(b)
    ft = FaultTolerantSpMV(matrix)
    for model_name in ("burst", "single-bit", "exponent", "mantissa"):
        injector = FaultInjector(
            rng=np.random.default_rng(7), model=make_fault_model(model_name)
        )
        state = {"armed": True}

        def hook(stage, data, work):
            if stage == "result" and state["armed"]:
                injector.corrupt_random_element(data, sigma=1e-8)
                state["armed"] = False

        result = ft.multiply(b, tamper=hook)
        assert not result.exhausted, model_name
        np.testing.assert_array_equal(result.value, reference)


def test_error_process_drives_detection_statistics():
    """With λ > 0 the number of detections tracks the number of injections."""
    matrix = suite_matrix("nos3")
    rng = np.random.default_rng(8)
    b = rng.standard_normal(matrix.n_cols)
    ft = FaultTolerantSpMV(matrix)
    injector = FaultInjector.seeded(9)
    process = ErrorProcess(5e-6, injector.rng)

    def tamper(stage, data, work):
        for _ in range(process.events_in(work)):
            if data.size:
                injector.corrupt_random_element(data, target=stage)

    detections = 0
    for _ in range(40):
        result = ft.multiply(b, tamper=tamper)
        detections += sum(len(flags) for flags in result.detected)
    assert len(injector.log) > 0
    assert detections > 0


def test_meter_accounts_full_solver_run():
    """Simulated seconds/flops accumulate consistently across a solve."""
    matrix = poisson2d(15)
    rng = np.random.default_rng(10)
    b = matrix.matvec(rng.standard_normal(matrix.n_rows))
    result = run_pcg(matrix, b, scheme="ours", error_rate=0.0, seed=11)
    assert result.seconds > 0
    assert result.flops > 2.0 * matrix.nnz * result.iterations  # at least the SpMVs


def test_schedule_trace_of_real_workload_renders():
    detector = BlockAbftDetector(suite_matrix("bcsstk13"), AbftConfig(block_size=32))
    schedule = Machine().schedule(detector.detection_graph())
    text = render_gantt(schedule, width=50)
    assert text.count("\n") >= 4


def test_plain_pcg_matches_protected_pcg_solution():
    matrix = poisson2d(14)
    rng = np.random.default_rng(12)
    x_true = rng.standard_normal(matrix.n_rows)
    b = matrix.matvec(x_true)
    plain = pcg(matrix, b, make_preconditioner("jacobi", matrix), tol=1e-10)
    protected = run_pcg(matrix, b, scheme="ours", error_rate=0.0, seed=13)
    np.testing.assert_allclose(plain.x, x_true, rtol=1e-6)
    np.testing.assert_allclose(protected.x, x_true, rtol=1e-3, atol=1e-6)


def test_setup_cost_amortizes_over_reuse():
    """Section III-E: reuse amortizes the checksum construction."""
    matrix = suite_matrix("bcsstk13")
    ft = FaultTolerantSpMV(matrix)
    meter = ExecutionMeter()
    rng = np.random.default_rng(14)
    n_multiplies = 50
    for _ in range(n_multiplies):
        ft.multiply(rng.standard_normal(matrix.n_cols), meter=meter)
    setup_seconds = meter.machine.params.launch_overhead + (
        ft.setup_cost.work / meter.machine.params.throughput
    )
    assert setup_seconds < 0.05 * meter.seconds
