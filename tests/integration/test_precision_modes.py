"""End-to-end precision modes: REPRO_DTYPE / REPRO_SCHEME environment legs.

Mirrors the CI ``precision-matrix`` job at unit scale: the whole
protected pipeline (scheme registry -> detector -> correction, planned
and unplanned) under the float32 dtype policy and under the ``vabft``
scheme selected via ``REPRO_SCHEME``.
"""

import numpy as np
import pytest

from repro.core import AbftConfig, FaultTolerantSpMV
from repro.core.dtypes import DTYPE_ENV_VAR, EPS_FLOAT32, EPS_FLOAT64
from repro.schemes import SCHEME_ENV_VAR, resolve_scheme
from repro.sparse import random_spd


def one_shot_burst(index=13, magnitude=1e4):
    state = {"armed": True}

    def hook(stage, data, work):
        if stage == "result" and state["armed"]:
            data[index] += magnitude
            state["armed"] = False

    return hook


def test_repro_scheme_env_selects_vabft(monkeypatch):
    monkeypatch.setenv(SCHEME_ENV_VAR, "vabft")
    matrix = random_spd(48, 400, seed=5)
    scheme = resolve_scheme(matrix, config=AbftConfig(block_size=8))
    assert scheme.name == "vabft"
    b = np.random.default_rng(1).standard_normal(48)
    result = scheme.multiply(b, tamper=one_shot_burst())
    assert any(result.detections)
    np.testing.assert_array_equal(result.value, matrix.matvec(b))


def test_float32_policy_pipeline_under_env(monkeypatch):
    """REPRO_DTYPE=float32 switches the policy, and a float32 matrix gets
    the float32 epsilon, while a float64 matrix keeps 2^-53."""
    monkeypatch.setenv(DTYPE_ENV_VAR, "float32")
    f32 = random_spd(48, 400, seed=5, dtype=np.float32)
    f64 = random_spd(48, 400, seed=5)
    spmv32 = FaultTolerantSpMV(f32, config=AbftConfig(block_size=8))
    spmv64 = FaultTolerantSpMV(f64, config=AbftConfig(block_size=8))
    assert spmv32.dtype_policy.name == "float32"
    assert spmv32.detector.epsilon == EPS_FLOAT32
    assert spmv64.detector.epsilon == EPS_FLOAT64
    b = np.random.default_rng(2).standard_normal(48).astype(np.float32)
    result = spmv32.multiply(b, tamper=one_shot_burst())
    assert any(result.detections)
    assert result.value.dtype == np.float32


@pytest.mark.parametrize("scheme_name", ["abft", "vabft"])
def test_planned_float32_matches_unplanned(scheme_name, monkeypatch):
    monkeypatch.setenv(SCHEME_ENV_VAR, scheme_name)
    matrix = random_spd(64, 520, seed=9, dtype=np.float32)
    b = np.random.default_rng(3).standard_normal(64).astype(np.float32)
    config = AbftConfig(block_size=16)
    direct = resolve_scheme(matrix, config=config)
    planned_host = resolve_scheme(matrix, config=config)
    expected = direct.multiply(b.copy())
    with planned_host.planned(n_shards=2) as plan:
        got = plan.multiply(b.copy())
    np.testing.assert_array_equal(got.value, expected.value)
    assert got.value.dtype == np.float32


def test_bfloat16_policy_quantizes_and_detects(monkeypatch):
    """The bfloat16 emulation: quantized float32 storage, 2^-8 epsilon,
    and detection still exact on a visible burst."""
    monkeypatch.setenv(DTYPE_ENV_VAR, "bfloat16")
    from repro.core.dtypes import BFLOAT16_POLICY, EPS_BFLOAT16

    base = random_spd(48, 400, seed=7, dtype=np.float32)
    matrix = base.with_data(BFLOAT16_POLICY.quantize(base.data))
    spmv = FaultTolerantSpMV(matrix, config=AbftConfig(block_size=8))
    assert spmv.detector.epsilon == EPS_BFLOAT16
    b = BFLOAT16_POLICY.quantize(
        np.random.default_rng(8).standard_normal(48).astype(np.float32)
    )
    clean = spmv.multiply(b)
    assert not any(clean.detections)
    hit = spmv.multiply(b, tamper=one_shot_burst())
    assert any(hit.detections)
    np.testing.assert_array_equal(hit.value, clean.value)
