"""Error-arrival process: exponential inter-arrival times in operation count.

Section VI of the paper: "we determine the error events from an exponential
distribution with an error rate λ.  We define 1/λ to be the expected number
of arithmetic operations between two consecutive error events."  The process
advances in *arithmetic operations* (the meter's flop count), not seconds,
so a protected run with more recomputation also suffers more errors — the
effect that makes checkpointing collapse at high λ.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InjectionError


class ErrorProcess:
    """Poisson error process over an operation counter.

    Args:
        rate: λ, the per-operation error probability (0 disables errors).
        rng: NumPy random generator (owned by the caller so campaigns can
            seed everything centrally).
    """

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if rate < 0:
            raise InjectionError(f"error rate must be >= 0, got {rate}")
        self.rate = rate
        self._rng = rng
        self._position = 0.0
        self._next_arrival = self._draw_gap() if rate > 0 else math.inf

    def _draw_gap(self) -> float:
        return float(self._rng.exponential(1.0 / self.rate))

    @property
    def position(self) -> float:
        """Operations elapsed so far."""
        return self._position

    def events_in(self, n_ops: float) -> int:
        """Advance the counter by ``n_ops`` operations; return arrivals inside.

        Arrival state carries over between calls, so splitting an interval
        across many kernels yields the same statistics as one big interval.
        """
        if n_ops < 0:
            raise InjectionError(f"cannot advance by negative operations: {n_ops}")
        self._position += n_ops
        count = 0
        while self._next_arrival <= self._position:
            count += 1
            self._next_arrival += self._draw_gap()
        return count

    def expected_events(self, n_ops: float) -> float:
        """Mean number of arrivals in ``n_ops`` operations (λ · n_ops)."""
        return self.rate * n_ops
