"""Extension study — protected sparse triangular solves.

Section III-E claims the scheme generalizes to decomposable associative
operations; this bench quantifies it for forward substitution: detection
overhead over the plain solve, plus coverage under injected errors (with
suffix re-solve correction).
"""

import numpy as np
from conftest import write_result

from repro.analysis import format_table
from repro.core import ProtectedTriangularSolve
from repro.machine import Machine
from repro.sparse import CooMatrix, random_spd

SIZES = (500, 1500, 4000)
TRIALS = 25


def _lower(n, seed):
    spd = random_spd(n, 8 * n, seed=seed)
    return CooMatrix.from_dense(np.tril(spd.to_dense())).to_csr()


def test_triangular_extension(benchmark):
    machine = Machine()
    rows = []
    overheads = []
    for n in SIZES:
        lower = _lower(n, seed=n)
        scheme = ProtectedTriangularSolve(lower, block_size=32, machine=machine)
        rng = np.random.default_rng(n)
        x_true = rng.standard_normal(n)
        rhs = lower.matvec(x_true)

        plain = machine.makespan(scheme._solve_graph(include_detection=False))
        protected = scheme.solve(rhs).seconds
        overhead = protected / plain - 1.0
        overheads.append(overhead)

        caught = repaired = 0
        for trial in range(TRIALS):
            state = {"armed": True}
            index = int(rng.integers(0, n))

            def tamper(stage, data, work):
                if stage == "result" and state["armed"]:
                    data[index] += 1.0 + abs(data[index])
                    state["armed"] = False

            result = scheme.solve(rhs, tamper=tamper)
            caught += not result.clean
            repaired += bool(
                np.allclose(result.value, x_true, rtol=1e-6, atol=1e-9)
            )
        rows.append(
            (
                n,
                lower.nnz,
                f"{overhead:.1%}",
                f"{caught}/{TRIALS}",
                f"{repaired}/{TRIALS}",
            )
        )
        assert caught == TRIALS
        assert repaired == TRIALS

    table = format_table(
        ("n", "nnz(L)", "detection overhead", "errors caught", "exact repairs"),
        rows,
        title="Extension — block-ABFT protected forward substitution",
    )
    write_result("ext_triangular", table)

    # Overhead shrinks as the solve grows (fixed detection costs amortize).
    assert overheads[-1] < overheads[0]

    lower = _lower(SIZES[0], seed=SIZES[0])
    scheme = ProtectedTriangularSolve(lower, block_size=32)
    rhs = lower.matvec(np.ones(SIZES[0]))
    benchmark.pedantic(lambda: scheme.solve(rhs), rounds=2, iterations=1)
