"""Unit tests for the checkpoint store."""

import numpy as np
import pytest

from repro.baselines import DEFAULT_CHECKPOINT_INTERVAL, CheckpointStore
from repro.errors import ConfigurationError


def test_default_interval_matches_paper():
    assert DEFAULT_CHECKPOINT_INTERVAL == 20


def test_save_restore_round_trip():
    store = CheckpointStore()
    x = np.arange(5.0)
    cost = store.save(7, {"x": x}, {"rho": 2.5})
    assert cost.work == pytest.approx(2.0 * 6)  # 5 array elements + 1 scalar
    iteration, arrays, scalars, _ = store.restore()
    assert iteration == 7
    np.testing.assert_array_equal(arrays["x"], x)
    assert scalars == {"rho": 2.5}


def test_snapshot_is_isolated_from_caller_mutation():
    store = CheckpointStore()
    x = np.ones(3)
    store.save(0, {"x": x})
    x[0] = 99.0  # mutate after save
    _, arrays, _, _ = store.restore()
    assert arrays["x"][0] == 1.0
    arrays["x"][1] = 42.0  # mutate the restored copy
    _, arrays2, _, _ = store.restore()
    assert arrays2["x"][1] == 1.0


def test_restore_without_checkpoint_raises():
    with pytest.raises(ConfigurationError):
        CheckpointStore().restore()


def test_save_rejects_negative_iteration():
    with pytest.raises(ConfigurationError):
        CheckpointStore().save(-1, {"x": np.ones(1)})


def test_counters_and_overwrite():
    store = CheckpointStore()
    store.save(0, {"x": np.zeros(2)})
    store.save(20, {"x": np.ones(2)})
    assert store.saves == 2
    assert store.iteration == 20
    _, arrays, _, _ = store.restore()
    np.testing.assert_array_equal(arrays["x"], np.ones(2))
    assert store.restores == 1


def test_restore_cost_matches_store_cost():
    store = CheckpointStore()
    save_cost = store.save(0, {"x": np.zeros(10)})
    _, _, _, restore_cost = store.restore()
    assert save_cost == restore_cost
