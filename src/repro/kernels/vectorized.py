"""Batched kernel set: every per-block loop becomes one fused reduction.

Selected-block operations gather their row (or entry) ranges into a single
flat index array (:func:`repro.kernels.base.flat_segment_indices`) and
reduce with ``np.add.reduceat`` — one NumPy call regardless of how many
blocks are selected.  Reduction order within each row/segment matches the
naive kernels exactly, so recomputed values are bit-identical; whole-block
dot products may differ from the naive BLAS calls in the last ulp, which
the differential suite checks against the paper's own rounding bounds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.errors import ShapeMismatchError
from repro.kernels.base import (
    ACCUMULATION_DTYPE,
    KernelSet,
    Tamper,
    flat_segment_indices,
    segment_sums,
    validate_blocks,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotations only)
    from repro.core.blocking import BlockPartition
    from repro.sparse.csr import CsrMatrix


def _check_operand(matrix: "CsrMatrix", b: np.ndarray) -> np.ndarray:
    # The operand joins the matrix's working dtype: float64 checksum
    # matrices keep the historic float64 coercion, float32 storage keeps
    # the multiply narrow.
    b = np.asarray(b, dtype=matrix.data.dtype)
    if b.shape != (matrix.n_cols,):
        raise ShapeMismatchError(
            f"operand has shape {b.shape}, expected ({matrix.n_cols},)"
        )
    return b


class VectorizedKernels(KernelSet):
    """Batched/segment-sum implementations of the hot-path kernels."""

    name = "vectorized"

    # -- weights / encoding ------------------------------------------------
    def linear_weights(self, partition: "BlockPartition") -> np.ndarray:
        if partition.n_rows == 0:
            return np.empty(0, dtype=ACCUMULATION_DTYPE)
        starts = partition.block_starts()[:-1]
        ramp = np.arange(partition.n_rows, dtype=ACCUMULATION_DTYPE)
        return ramp - np.repeat(starts, partition.block_lengths()) + 1.0

    def encode(
        self,
        source: "CsrMatrix",
        partition: "BlockPartition",
        weights: np.ndarray,
    ) -> "CsrMatrix":
        from repro.sparse.coo import CooMatrix

        entry_rows = source.entry_rows()
        entry_blocks = partition.block_ids_of_rows(entry_rows)
        weighted = source.data * weights[entry_rows]
        return CooMatrix(
            (partition.n_blocks, source.n_cols),
            entry_blocks,
            source.indices.copy(),
            weighted,
        ).to_csr()

    # -- detection ---------------------------------------------------------
    def result_checksums(
        self,
        weights: np.ndarray,
        r: np.ndarray,
        partition: "BlockPartition",
        out: Optional[np.ndarray] = None,
        workspace: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if partition.n_blocks == 0:
            return out if out is not None else np.empty(0, dtype=ACCUMULATION_DTYPE)
        # Corrupted results may contain inf/NaN; they must propagate into
        # the checksums silently (detection flags them downstream).
        with np.errstate(invalid="ignore", over="ignore"):
            if workspace is None:
                weighted = weights * r
            else:
                np.multiply(weights, r, out=workspace)
                weighted = workspace
            starts = partition.block_starts()[:-1]
            if out is None:
                # reprolint: disable=ABFT002 -- left-to-right segment order is
                # the kernel contract, differentially tested against naive
                return np.add.reduceat(weighted, starts)
            # reprolint: disable=ABFT002 -- same reduction into a caller buffer
            np.add.reduceat(weighted, starts, out=out)
            return out

    def result_checksums_for_blocks(
        self,
        weights: np.ndarray,
        r: np.ndarray,
        partition: "BlockPartition",
        blocks: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        blocks = validate_blocks(blocks, partition.n_blocks)
        if blocks.size == 0:
            return out if out is not None else np.empty(0, dtype=ACCUMULATION_DTYPE)
        starts = partition.block_starts()
        indices, offsets = flat_segment_indices(starts[blocks], starts[blocks + 1])
        with np.errstate(invalid="ignore", over="ignore"):
            return segment_sums(weights[indices] * r[indices], offsets, out=out)

    def compare_syndromes(
        self, t1: np.ndarray, t2: np.ndarray, thresholds: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        with np.errstate(invalid="ignore", over="ignore"):
            syndrome = np.asarray(t1, dtype=ACCUMULATION_DTYPE) - t2
            exceeded = np.abs(syndrome) > thresholds
            exceeded |= ~np.isfinite(syndrome)
        return syndrome, exceeded

    # -- correction --------------------------------------------------------
    def correct_blocks(
        self,
        matrix: "CsrMatrix",
        partition: "BlockPartition",
        b: np.ndarray,
        r: np.ndarray,
        blocks: np.ndarray,
        tamper: Tamper = None,
    ) -> Tuple[int, int]:
        blocks = validate_blocks(blocks, partition.n_blocks)
        b = _check_operand(matrix, b)
        starts = partition.block_starts()
        block_lo, block_hi = starts[blocks], starts[blocks + 1]
        row_indices, row_offsets = flat_segment_indices(block_lo, block_hi)
        entry_indices, entry_offsets = flat_segment_indices(
            matrix.indptr[row_indices], matrix.indptr[row_indices + 1]
        )
        products = matrix.data[entry_indices] * b[matrix.indices[entry_indices]]
        sums = segment_sums(products, entry_offsets)
        if tamper is None:
            r[row_indices] = sums
        else:
            # The hook-call sequence (one call per block, in order) is part
            # of the kernel contract; campaigns replay identically.
            block_nnz = matrix.indptr[block_hi] - matrix.indptr[block_lo]
            for i in range(blocks.size):
                segment = sums[row_offsets[i] : row_offsets[i + 1]]
                tamper("corrected", segment, 2.0 * float(block_nnz[i]))
                r[block_lo[i] : block_hi[i]] = segment
        return int(row_indices.size), int(entry_indices.size)

    def row_checksums(
        self, csr: "CsrMatrix", rows: np.ndarray, b: np.ndarray
    ) -> Tuple[np.ndarray, int]:
        rows = validate_blocks(rows, csr.n_rows)
        b = _check_operand(csr, b)
        entry_indices, entry_offsets = flat_segment_indices(
            csr.indptr[rows], csr.indptr[rows + 1]
        )
        products = csr.data[entry_indices] * b[csr.indices[entry_indices]]
        return segment_sums(products, entry_offsets), int(entry_indices.size)

    # -- multi-RHS (SpMM) --------------------------------------------------
    def result_checksums_multi(
        self,
        r: np.ndarray,
        partition: "BlockPartition",
        weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if partition.n_blocks == 0:
            return np.empty((0, r.shape[1]), dtype=ACCUMULATION_DTYPE)
        with np.errstate(invalid="ignore", over="ignore"):
            values = r if weights is None else weights[:, None] * r
            # reprolint: disable=ABFT002 -- left-to-right segment order is the
            # kernel contract, differentially tested against the naive set
            return np.add.reduceat(values, partition.block_starts()[:-1], axis=0)

    def result_checksums_multi_for_blocks(
        self,
        r: np.ndarray,
        partition: "BlockPartition",
        blocks: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        blocks = validate_blocks(blocks, partition.n_blocks)
        if blocks.size == 0:
            return np.empty((0, r.shape[1]), dtype=ACCUMULATION_DTYPE)
        starts = partition.block_starts()
        indices, offsets = flat_segment_indices(starts[blocks], starts[blocks + 1])
        with np.errstate(invalid="ignore", over="ignore"):
            values = r[indices] if weights is None else weights[indices, None] * r[indices]
            # Blocks always span >= 1 row, so no reduceat empty-segment quirk.
            # reprolint: disable=ABFT002 -- left-to-right segment order is the
            # kernel contract, differentially tested against the naive set
            return np.add.reduceat(values, offsets[:-1], axis=0)

    def compare_syndromes_multi(
        self, t1: np.ndarray, t2: np.ndarray, thresholds: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.compare_syndromes(t1, t2, thresholds)

    def correct_cells(
        self,
        matrix: "CsrMatrix",
        partition: "BlockPartition",
        b: np.ndarray,
        r: np.ndarray,
        cells: np.ndarray,
        tamper: Tamper = None,
    ) -> Tuple[int, int]:
        cells = np.asarray(cells, dtype=np.int64).reshape(-1, 2)
        blocks = validate_blocks(cells[:, 0], partition.n_blocks)
        columns = validate_blocks(cells[:, 1], r.shape[1])
        starts = partition.block_starts()
        block_lo, block_hi = starts[blocks], starts[blocks + 1]
        row_indices, row_offsets = flat_segment_indices(block_lo, block_hi)
        column_per_row = np.repeat(columns, block_hi - block_lo)
        entry_indices, entry_offsets = flat_segment_indices(
            matrix.indptr[row_indices], matrix.indptr[row_indices + 1]
        )
        column_per_entry = np.repeat(
            column_per_row, matrix.indptr[row_indices + 1] - matrix.indptr[row_indices]
        )
        products = matrix.data[entry_indices] * b[
            matrix.indices[entry_indices], column_per_entry
        ]
        sums = segment_sums(products, entry_offsets)
        if tamper is None:
            r[row_indices, column_per_row] = sums
        else:
            cell_nnz = matrix.indptr[block_hi] - matrix.indptr[block_lo]
            for i in range(blocks.size):
                segment = sums[row_offsets[i] : row_offsets[i + 1]]
                tamper("corrected", segment, 2.0 * float(cell_nnz[i]))
                r[block_lo[i] : block_hi[i], columns[i]] = segment
        # reprolint: disable=ABFT002 -- integer nnz accounting; exact in any order
        nnz = int((matrix.indptr[block_hi] - matrix.indptr[block_lo]).sum())
        return int(row_indices.size), nnz
