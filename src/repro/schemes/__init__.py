"""repro.schemes — the pluggable protection-policy layer.

Every way of running a trustworthy SpMV — the paper's block-ABFT scheme
and the five related-work baselines it is evaluated against — lives
behind one registry with one driver contract:

* :class:`ProtectedSpmvResult` — the unified result type (per-check
  detections, row-range corrections, optional block ids, simulated cost);
* :class:`ProtectionScheme` — the protocol every scheme satisfies
  (``multiply``/``detection_graph`` bound to one matrix, with injected
  kernels and telemetry);
* a process-wide registry (:func:`register_scheme` /
  :func:`make_scheme` / :func:`resolve_scheme`) with protected built-ins
  and the ``REPRO_SCHEME`` environment override, mirroring
  :mod:`repro.kernels` and the :mod:`repro.obs` exporters.

Built-ins: ``abft`` (the paper's scheme), ``dense_check``, ``complete``,
``bisection``, ``checkpoint``, ``redundancy`` (DWC), ``tmr`` and
``vabft`` (block-ABFT with online variance-adaptive thresholds).
Campaigns, sweeps, the CLI and :func:`repro.solvers.ft_pcg.run_pcg`
resolve schemes exclusively through this registry.
"""

from repro.schemes import builtins as _builtins
from repro.schemes.base import ProtectionScheme, TamperHook
from repro.schemes.registry import (
    BUILTIN_SCHEMES,
    DEFAULT_CORRECTION_SCHEMES,
    DEFAULT_PCG_SCHEMES,
    DEFAULT_SCHEME,
    SCHEME_ALIASES,
    SCHEME_ENV_VAR,
    SchemeFactory,
    available_schemes,
    canonical_scheme_name,
    get_scheme_factory,
    make_scheme,
    register_scheme,
    resolve_scheme,
    unregister_scheme,
)
from repro.schemes.result import ProtectedSpmvResult

register_scheme("abft", _builtins.make_abft, overwrite=True)
register_scheme("bisection", _builtins.make_bisection, overwrite=True)
register_scheme("checkpoint", _builtins.make_checkpoint, overwrite=True)
register_scheme("complete", _builtins.make_complete, overwrite=True)
register_scheme("dense_check", _builtins.make_dense_check, overwrite=True)
register_scheme("redundancy", _builtins.make_redundancy, overwrite=True)
register_scheme("tmr", _builtins.make_tmr, overwrite=True)
register_scheme("vabft", _builtins.make_vabft, overwrite=True)

__all__ = [
    "ProtectedSpmvResult",
    "ProtectionScheme",
    "TamperHook",
    "SchemeFactory",
    "SCHEME_ENV_VAR",
    "SCHEME_ALIASES",
    "DEFAULT_SCHEME",
    "DEFAULT_CORRECTION_SCHEMES",
    "DEFAULT_PCG_SCHEMES",
    "BUILTIN_SCHEMES",
    "available_schemes",
    "canonical_scheme_name",
    "get_scheme_factory",
    "make_scheme",
    "register_scheme",
    "resolve_scheme",
    "unregister_scheme",
]
