"""Unit tests for the COO construction format."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse import CooMatrix


def test_from_entries_round_trips_to_dense():
    coo = CooMatrix.from_entries((2, 3), [(0, 0, 1.0), (1, 2, -2.5)])
    expected = np.array([[1.0, 0.0, 0.0], [0.0, 0.0, -2.5]])
    np.testing.assert_array_equal(coo.to_dense(), expected)


def test_from_entries_empty_is_all_zero():
    coo = CooMatrix.from_entries((3, 3), [])
    assert coo.nnz == 0
    np.testing.assert_array_equal(coo.to_dense(), np.zeros((3, 3)))


def test_from_dense_extracts_only_nonzeros():
    dense = np.array([[0.0, 3.0], [4.0, 0.0]])
    coo = CooMatrix.from_dense(dense)
    assert coo.nnz == 2
    np.testing.assert_array_equal(coo.to_dense(), dense)


def test_from_dense_rejects_1d_input():
    with pytest.raises(ShapeMismatchError):
        CooMatrix.from_dense(np.ones(4))


def test_duplicates_are_summed_in_dense_and_csr():
    coo = CooMatrix.from_entries((2, 2), [(0, 1, 2.0), (0, 1, 3.0)])
    assert coo.to_dense()[0, 1] == 5.0
    csr = coo.to_csr()
    assert csr.nnz == 1
    assert csr.to_dense()[0, 1] == 5.0


def test_deduplicated_sorts_row_major():
    coo = CooMatrix.from_entries((3, 3), [(2, 0, 1.0), (0, 2, 2.0), (0, 1, 3.0)])
    dedup = coo.deduplicated()
    np.testing.assert_array_equal(dedup.row, [0, 0, 2])
    np.testing.assert_array_equal(dedup.col, [1, 2, 0])
    np.testing.assert_array_equal(dedup.data, [3.0, 2.0, 1.0])


def test_deduplicated_keeps_cancelled_zero_structurally():
    coo = CooMatrix.from_entries((1, 1), [(0, 0, 1.0), (0, 0, -1.0)])
    dedup = coo.deduplicated()
    assert dedup.nnz == 1
    assert dedup.data[0] == 0.0


def test_transpose_swaps_axes():
    coo = CooMatrix.from_entries((2, 3), [(0, 2, 7.0)])
    t = coo.transpose()
    assert t.shape == (3, 2)
    assert t.to_dense()[2, 0] == 7.0


def test_rejects_out_of_range_row_index():
    with pytest.raises(SparseFormatError):
        CooMatrix.from_entries((2, 2), [(2, 0, 1.0)])


def test_rejects_out_of_range_column_index():
    with pytest.raises(SparseFormatError):
        CooMatrix.from_entries((2, 2), [(0, -1, 1.0)])


def test_rejects_mismatched_array_lengths():
    with pytest.raises(SparseFormatError):
        CooMatrix((2, 2), np.array([0]), np.array([0, 1]), np.array([1.0]))


def test_rejects_negative_shape():
    with pytest.raises(SparseFormatError):
        CooMatrix.from_entries((-1, 2), [])


def test_to_csr_handles_trailing_empty_rows():
    coo = CooMatrix.from_entries((4, 4), [(0, 0, 1.0)])
    csr = coo.to_csr()
    np.testing.assert_array_equal(csr.indptr, [0, 1, 1, 1, 1])
