"""Scheme-registry contract (mirrors the kernel-registry behavior)."""

import numpy as np
import pytest

from repro.core.config import AbftConfig
from repro.errors import ConfigurationError
from repro.machine import Machine
from repro.schemes import (
    BUILTIN_SCHEMES,
    DEFAULT_SCHEME,
    SCHEME_ALIASES,
    SCHEME_ENV_VAR,
    ProtectedSpmvResult,
    ProtectionScheme,
    available_schemes,
    canonical_scheme_name,
    get_scheme_factory,
    make_scheme,
    register_scheme,
    resolve_scheme,
    unregister_scheme,
)
from repro.sparse import random_spd


@pytest.fixture(scope="module")
def matrix():
    return random_spd(48, 400, seed=3)


class _StubScheme:
    """Minimal object satisfying the ProtectionScheme protocol."""

    name = "stub"

    def __init__(self, matrix, telemetry):
        self.matrix = matrix
        self.telemetry = telemetry

    def multiply(self, b, tamper=None, meter=None):
        return ProtectedSpmvResult(
            value=self.matrix.matvec(b),
            detections=(False,),
            corrections=(),
            rounds=0,
            seconds=0.0,
            flops=0.0,
            exhausted=False,
        )

    def detection_graph(self):
        from repro.machine import TaskGraph

        return TaskGraph()


def _stub_factory(matrix, *, config, machine, telemetry, **options):
    if options:
        raise ConfigurationError(f"unknown options {sorted(options)}")
    return _StubScheme(matrix, telemetry)


@pytest.fixture
def stub():
    register_scheme("stub", _stub_factory)
    yield
    unregister_scheme("stub")


def test_builtins_are_registered():
    assert set(BUILTIN_SCHEMES) <= set(available_schemes())


def test_builtins_cannot_be_unregistered():
    with pytest.raises(ConfigurationError):
        unregister_scheme("abft")
    assert "abft" in available_schemes()


def test_every_builtin_resolves_to_a_protection_scheme(matrix):
    for name in BUILTIN_SCHEMES:
        scheme = make_scheme(name, matrix)
        assert isinstance(scheme, ProtectionScheme)
        assert scheme.matrix is matrix
        assert scheme.name == name


def test_every_builtin_returns_unified_result(matrix):
    b = np.random.default_rng(5).standard_normal(matrix.n_cols)
    for name in BUILTIN_SCHEMES:
        result = make_scheme(name, matrix).multiply(b)
        assert isinstance(result, ProtectedSpmvResult)
        assert result.clean
        np.testing.assert_allclose(result.value, matrix.matvec(b))


def test_aliases_resolve_everywhere(matrix):
    for alias, target in SCHEME_ALIASES.items():
        assert canonical_scheme_name(alias) == target
        assert make_scheme(alias, matrix).name == target


def test_unknown_scheme_raises():
    with pytest.raises(ConfigurationError):
        canonical_scheme_name("bogus")
    with pytest.raises(ConfigurationError):
        get_scheme_factory("bogus")


def test_alias_names_cannot_be_registered():
    with pytest.raises(ConfigurationError):
        register_scheme("ours", _stub_factory)


def test_duplicate_registration_requires_overwrite(stub):
    with pytest.raises(ConfigurationError):
        register_scheme("stub", _stub_factory)
    register_scheme("stub", _stub_factory, overwrite=True)


def test_registered_scheme_resolves(stub, matrix):
    scheme = make_scheme("stub", matrix)
    assert isinstance(scheme, _StubScheme)
    assert scheme.multiply(np.ones(matrix.n_cols)).clean


def test_non_scheme_factory_product_rejected(matrix):
    register_scheme("broken", lambda m, **kw: object())
    try:
        with pytest.raises(ConfigurationError):
            make_scheme("broken", matrix)
    finally:
        unregister_scheme("broken")


def test_unknown_factory_options_rejected(matrix):
    for name in BUILTIN_SCHEMES:
        with pytest.raises(ConfigurationError):
            make_scheme(name, matrix, not_an_option=1)


def test_resolve_scheme_passes_instances_through(stub, matrix):
    instance = make_scheme("stub", matrix)
    assert resolve_scheme(matrix, instance) is instance


def test_resolve_scheme_defaults(matrix, monkeypatch):
    monkeypatch.delenv(SCHEME_ENV_VAR, raising=False)
    assert resolve_scheme(matrix).name == DEFAULT_SCHEME


def test_resolve_scheme_honors_config(matrix, monkeypatch):
    monkeypatch.delenv(SCHEME_ENV_VAR, raising=False)
    config = AbftConfig(scheme="dense_check")
    assert resolve_scheme(matrix, config=config).name == "dense_check"


def test_env_overrides_defaulted_selection_only(matrix, monkeypatch):
    monkeypatch.setenv(SCHEME_ENV_VAR, "tmr")
    # Defaulted selection (None) follows the environment...
    assert resolve_scheme(matrix).name == "tmr"
    assert resolve_scheme(matrix, config=AbftConfig(scheme="complete")).name == "tmr"
    # ...but an explicit name always wins.
    assert resolve_scheme(matrix, "bisection").name == "bisection"
    assert make_scheme("bisection", matrix).name == "bisection"


def test_config_rejects_unknown_scheme():
    with pytest.raises(ConfigurationError):
        AbftConfig(scheme="bogus")


def test_make_scheme_uses_shared_machine(matrix):
    machine = Machine()
    scheme = make_scheme("complete", matrix, machine=machine)
    assert scheme.machine is machine
