"""Malleable-task abstraction for the machine model.

A :class:`Task` is one GPU kernel (or CPU routine) characterized by its
total *work* (FLOPs) and its *span* (length of the longest chain of
sequential dependence steps at kernel granularity — e.g. reduction levels).
With an allocated throughput ``r`` the task runs for::

    launch_overhead + max(work / r, span * sync_time)

seconds, the classic work-span (Brent) execution-time model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import SchedulerError


@dataclass(frozen=True)
class Task:
    """One schedulable kernel.

    Attributes:
        name: unique name within its graph.
        work: total floating-point operations (>= 0).
        span: sequential dependence steps at kernel granularity (>= 0).
        deps: names of tasks that must finish before this one starts.
    """

    name: str
    work: float = 0.0
    span: float = 0.0
    deps: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchedulerError("task name must be non-empty")
        if self.work < 0:
            raise SchedulerError(f"task {self.name!r}: work must be >= 0, got {self.work}")
        if self.span < 0:
            raise SchedulerError(f"task {self.name!r}: span must be >= 0, got {self.span}")
        object.__setattr__(self, "deps", tuple(self.deps))

    def solo_duration(self, throughput: float, launch: float, sync: float) -> float:
        """Execution time when the task owns the whole device."""
        compute = self.work / throughput if self.work > 0 else 0.0
        return launch + max(compute, self.span * sync)

    def min_duration(self, sync: float) -> float:
        """Lower bound on compute time regardless of allocated throughput."""
        return self.span * sync
