"""Bisection localization + partial recomputation (Sloan et al. [30]).

After the dense check fires, the matrix is repeatedly halved and each half
is checked until the error is delimited — the paper adopts this baseline
with an *early stop at 40 % of the complete localization traversal*, after
which the remaining range is recomputed.

Every probe is a dense inner product ``c_node · b`` (the node checksums are
precomputed at setup) followed by a host-side comparison, i.e. one blocking
scalar round trip per probe; the right-hand sibling's syndrome is derived
from the parent's by subtraction, so each split costs one probe.  This is
exactly the "expensive error localization" the proposed scheme eliminates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.dense_check import DenseChecksum
from repro.baselines.scheme import BaselineContext
from repro.core.corrector import TamperHook
from repro.errors import ConfigurationError
from repro.machine import (
    ExecutionMeter,
    Machine,
    TaskGraph,
    dense_check_cost,
    log2ceil,
    partial_spmv_cost,
    probe_cost,
)
from repro.schemes.result import ProtectedSpmvResult
from repro.sparse.csr import CsrMatrix

#: The early-stop fraction used throughout the paper's evaluation.
DEFAULT_EARLY_STOP = 0.4


def _column_sums(matrix: CsrMatrix, start: int, stop: int) -> np.ndarray:
    """Dense column sums of the row range ``[start, stop)``."""
    lo, hi = matrix.indptr[start], matrix.indptr[stop]
    return np.bincount(
        matrix.indices[lo:hi], weights=matrix.data[lo:hi], minlength=matrix.n_cols
    )


@dataclass(frozen=True)
class LocalizationOutcome:
    """Result of one bisection traversal."""

    ranges: Tuple[Tuple[int, int], ...]
    probes: int


class BisectionLocalizer:
    """Precomputed checksum tree + the bisection traversal itself."""

    def __init__(
        self,
        matrix: CsrMatrix,
        early_stop_fraction: float = DEFAULT_EARLY_STOP,
    ) -> None:
        if not 0.0 < early_stop_fraction <= 1.0:
            raise ConfigurationError(
                f"early_stop_fraction must be in (0, 1], got {early_stop_fraction}"
            )
        self.matrix = matrix
        m = max(1, matrix.n_rows)
        #: Depth of a complete traversal (localizing to single rows).
        self.full_depth = max(1, int(math.ceil(math.log2(m))))
        #: Levels actually descended (the 40 % early stop).
        self.stop_depth = max(1, int(math.ceil(early_stop_fraction * self.full_depth)))
        self.early_stop_fraction = early_stop_fraction
        #: Left-child checksum vectors, keyed by the child's row range.
        self._left_checksums: Dict[Tuple[int, int], np.ndarray] = {}
        self._precompute(0, matrix.n_rows, self.stop_depth)

    def _precompute(self, start: int, stop: int, levels: int) -> None:
        if levels == 0 or stop - start <= 1:
            return
        mid = (start + stop) // 2
        self._left_checksums[(start, mid)] = _column_sums(self.matrix, start, mid)
        self._precompute(start, mid, levels - 1)
        self._precompute(mid, stop, levels - 1)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def localize(
        self,
        b: np.ndarray,
        r: np.ndarray,
        root_syndrome: float,
        tau: float,
        tamper: Optional[TamperHook] = None,
    ) -> LocalizationOutcome:
        """Delimit error locations by descending ``stop_depth`` levels.

        Args:
            b: operand vector.
            r: (corrupted) result vector.
            root_syndrome: the dense check's ``c b - w^T r``.
            tau: the norm bound used for every probe comparison.
            tamper: fault hook for the probe arithmetic.

        Returns:
            The flagged row ranges (to be recomputed) and the probe count.
        """
        frontier: List[Tuple[int, int, float]] = [
            (0, self.matrix.n_rows, root_syndrome)
        ]
        probes = 0
        for _ in range(self.stop_depth):
            next_frontier: List[Tuple[int, int, float]] = []
            for start, stop, syndrome in frontier:
                if stop - start <= 1:
                    next_frontier.append((start, stop, syndrome))
                    continue
                mid = (start + stop) // 2
                probes += 1
                box = np.array([float(np.dot(self._left_checksums[(start, mid)], b))])
                if tamper is not None:
                    tamper("t1", box, 2.0 * self.matrix.n_cols)
                with np.errstate(invalid="ignore", over="ignore"):
                    left_result = float(np.sum(r[start:mid]))
                box2 = np.array([left_result])
                if tamper is not None:
                    tamper("t2", box2, float(mid - start))
                with np.errstate(invalid="ignore", over="ignore"):
                    left_syndrome = float(box[0]) - float(box2[0])
                    right_syndrome = syndrome - left_syndrome
                left_flag = abs(left_syndrome) > tau or not math.isfinite(left_syndrome)
                right_flag = abs(right_syndrome) > tau or not math.isfinite(
                    right_syndrome
                )
                if left_flag:
                    next_frontier.append((start, mid, left_syndrome))
                if right_flag:
                    next_frontier.append((mid, stop, right_syndrome))
                if not left_flag and not right_flag:
                    # Neither half shows the error (cancellation or a fault
                    # in the probes themselves): keep the parent range.
                    next_frontier.append((start, stop, syndrome))
            frontier = next_frontier
        ranges = tuple((start, stop) for start, stop, _ in frontier)
        return LocalizationOutcome(ranges=ranges, probes=probes)

    def localization_graph(self, probes: int) -> TaskGraph:
        """Cost of a traversal: host-serialized (but pipelined) probes."""
        graph = TaskGraph()
        previous: List[str] = []
        for index in range(probes):
            cost = probe_cost(self.matrix.n_cols)
            name = f"probe{index}"
            graph.add(name, cost.work, cost.span, deps=previous)
            previous = [name]
        return graph


class PartialRecomputationSpMV(BaselineContext):
    """Dense check + bisection localization + range recomputation ([30])."""

    name = "bisection"

    def __init__(
        self,
        matrix: CsrMatrix,
        machine: Optional[Machine] = None,
        max_rounds: int = 8,
        early_stop_fraction: float = DEFAULT_EARLY_STOP,
        bound_scale: float = 1.0,
        kernel: object = None,
        telemetry: object = None,
    ) -> None:
        super().__init__(matrix, machine=machine, kernel=kernel, telemetry=telemetry)
        self.max_rounds = max_rounds
        self.checker = DenseChecksum(matrix, bound_scale=bound_scale)
        self.localizer = BisectionLocalizer(matrix, early_stop_fraction)

    def multiply(
        self,
        b: np.ndarray,
        tamper: Optional[TamperHook] = None,
        meter: Optional[ExecutionMeter] = None,
    ) -> ProtectedSpmvResult:
        """One protected multiply (same driver contract as the core scheme)."""
        matrix = self.matrix
        meter = self._meter(meter)
        start_seconds, start_flops = meter.snapshot()
        max_row = int(matrix.row_lengths().max(initial=1))

        with self.telemetry.span(
            self._span_name, rows=matrix.n_rows, nnz=matrix.nnz
        ):
            meter.run_graph(self.checker.detection_graph())
            r = matrix.matvec(b)
            if tamper is not None:
                tamper("result", r, 2.0 * matrix.nnz)
            report = self.checker.check(b, r, tamper)
            self._record_check(report.detected)

            detections = [report.detected]
            corrections: list[tuple[int, int]] = []
            rounds = 0
            exhausted = False
            while report.detected:
                if rounds >= self.max_rounds:
                    exhausted = True
                    break
                rounds += 1
                self._record_correction()

                # Localization phase (the step the proposed scheme avoids).
                outcome = self.localizer.localize(
                    b, r, report.syndrome, report.threshold, tamper
                )
                meter.run_graph(self.localizer.localization_graph(outcome.probes))

                # Partial recomputation of each delimited range, through the
                # injected kernel set (bit-identical across kernels).
                graph = TaskGraph()
                for index, (start, stop) in enumerate(outcome.ranges):
                    nnz = self._recompute_rows(b, r, start, stop, tamper)
                    corrections.append((start, stop))
                    cost = partial_spmv_cost(nnz, max_row)
                    graph.add(f"recompute{index}", cost.work, cost.span)
                if len(graph):
                    meter.run_graph(graph)

                # Full dense re-check (c b and tau are reusable; w^T r is not).
                recheck_graph = TaskGraph()
                cost = dense_check_cost(matrix.n_rows)
                recheck_graph.add("wr", cost.work, cost.span)
                meter.run_graph(recheck_graph)
                box = np.array([self.checker.result_checksum(r)])
                if tamper is not None:
                    tamper("t2", box, 2.0 * matrix.n_rows)
                report = self.checker.evaluate(
                    report.operand_checksum, float(box[0]), report.threshold
                )
                detections.append(report.detected)
                self._record_check(report.detected)

        seconds, flops = meter.snapshot()
        return ProtectedSpmvResult(
            value=r,
            detections=tuple(detections),
            corrections=tuple(corrections),
            rounds=rounds,
            seconds=seconds - start_seconds,
            flops=flops - start_flops,
            exhausted=exhausted,
        )

    def detection_graph(self) -> TaskGraph:
        """Task graph of one multiply's detection phase."""
        return self.checker.detection_graph()
