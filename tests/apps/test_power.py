"""Unit tests for protected power iteration and PageRank."""

import numpy as np
import pytest

from repro.apps import build_link_matrix, pagerank, power_iteration
from repro.errors import ConfigurationError, ShapeMismatchError
from repro.faults import ErrorProcess, FaultInjector
from repro.sparse import CooMatrix, banded_spd, random_spd


@pytest.fixture(scope="module")
def spd():
    return random_spd(150, 1500, seed=151)


def test_power_iteration_finds_dominant_eigenpair(spd):
    result = power_iteration(spd, tol=1e-12, protected=False)
    assert result.converged
    dense = spd.to_dense()
    eigvals = np.linalg.eigvalsh(dense)
    assert result.eigenvalue == pytest.approx(eigvals[-1], rel=1e-6)
    # Rayleigh residual: ||A v - lambda v|| small.
    residual = np.linalg.norm(dense @ result.vector - result.eigenvalue * result.vector)
    assert residual < 1e-6 * abs(result.eigenvalue)


def test_protected_and_plain_agree_fault_free(spd):
    plain = power_iteration(spd, protected=False, seed=1)
    protected = power_iteration(spd, protected=True, seed=1)
    np.testing.assert_allclose(protected.vector, plain.vector, rtol=1e-9)
    assert protected.detections == 0
    assert protected.seconds > plain.seconds  # protection costs something


def test_protected_power_iteration_rides_through_errors(spd):
    injector = FaultInjector.seeded(2)
    process = ErrorProcess(2e-6, injector.rng)

    def tamper(stage, data, work):
        for _ in range(process.events_in(work)):
            if data.size:
                injector.corrupt_random_element(data, target=stage)

    reference = power_iteration(spd, protected=False, seed=3)
    protected = power_iteration(spd, protected=True, seed=3, tamper=tamper)
    assert protected.converged
    np.testing.assert_allclose(
        np.abs(protected.vector), np.abs(reference.vector), rtol=1e-5, atol=1e-8
    )


def test_power_iteration_validation(spd):
    rect = CooMatrix.from_entries((2, 3), [(0, 0, 1.0)]).to_csr()
    with pytest.raises(ShapeMismatchError):
        power_iteration(rect)
    with pytest.raises(ConfigurationError):
        power_iteration(spd, tol=0.0)
    with pytest.raises(ConfigurationError):
        power_iteration(spd, max_iterations=0)


def test_build_link_matrix_column_stochastic():
    edges = np.array([[0, 1], [0, 2], [1, 2], [2, 0]])
    link = build_link_matrix(edges, 3)
    sums = link.to_dense().sum(axis=0)
    np.testing.assert_allclose(sums, [1.0, 1.0, 1.0])


def test_build_link_matrix_dangling_page():
    edges = np.array([[0, 1]])  # page 1 has no outgoing links
    link = build_link_matrix(edges, 2)
    assert link.to_dense()[:, 1].sum() == 0.0


def test_build_link_matrix_validation():
    with pytest.raises(ShapeMismatchError):
        build_link_matrix(np.array([1, 2, 3]), 4)
    with pytest.raises(ConfigurationError):
        build_link_matrix(np.array([[0, 9]]), 3)


def test_pagerank_on_known_graph():
    # A 3-cycle with an extra edge into page 0: page 0 ranks highest.
    edges = np.array([[0, 1], [1, 2], [2, 0], [1, 0]])
    link = build_link_matrix(edges, 3)
    ranks, diag = pagerank(link, protected=False)
    assert diag.converged
    assert ranks.sum() == pytest.approx(1.0)
    assert np.argmax(ranks) == 0


def test_pagerank_protected_matches_plain():
    rng = np.random.default_rng(4)
    edges = rng.integers(0, 100, size=(600, 2))
    link = build_link_matrix(edges, 100)
    plain, _ = pagerank(link, protected=False)
    protected, diag = pagerank(link, protected=True)
    np.testing.assert_allclose(protected, plain, rtol=1e-9)
    assert diag.detections == 0


def test_pagerank_validation():
    link = build_link_matrix(np.array([[0, 1]]), 2)
    with pytest.raises(ConfigurationError):
        pagerank(link, damping=1.0)
    rect = CooMatrix.from_entries((2, 3), [(0, 0, 1.0)]).to_csr()
    with pytest.raises(ShapeMismatchError):
        pagerank(rect)


def test_power_iteration_on_banded(spd):
    a = banded_spd(80, 3, 0.9, seed=5)
    result = power_iteration(a, protected=True, tol=1e-11)
    assert result.converged
    assert result.eigenvalue > 0
