"""Registry, dispatch-order and configuration tests for repro.kernels."""

import numpy as np
import pytest

from repro.core import ChecksumMatrix, make_weights
from repro.core.blocking import BlockPartition
from repro.core.config import AbftConfig
from repro.errors import ConfigurationError
from repro.kernels import (
    BUILTIN_KERNELS,
    DEFAULT_KERNEL,
    KERNEL_ENV_VAR,
    KernelSet,
    available_kernels,
    get_kernels,
    register_kernels,
    resolve_kernels,
    unregister_kernels,
    validate_blocks,
)
from repro.kernels.naive import NaiveKernels
from repro.sparse import random_spd


@pytest.fixture(autouse=True)
def _clean_kernel_env(monkeypatch):
    """Dispatch-order tests need a known baseline: no ambient override."""
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)


def test_builtins_registered():
    names = available_kernels()
    for builtin in BUILTIN_KERNELS:
        assert builtin in names
    assert "parallel" in BUILTIN_KERNELS
    assert DEFAULT_KERNEL in names


def test_get_kernels_unknown_name():
    with pytest.raises(ConfigurationError, match="unknown kernel set"):
        get_kernels("does-not-exist")


def test_resolve_default_and_names():
    assert resolve_kernels().name == DEFAULT_KERNEL
    assert resolve_kernels("naive").name == "naive"
    assert resolve_kernels("vectorized").name == "vectorized"


def test_resolve_rejects_non_string_non_kernelset():
    with pytest.raises(ConfigurationError, match="name or KernelSet"):
        resolve_kernels(42)


def test_resolve_instance_passthrough():
    impl = NaiveKernels()
    assert resolve_kernels(impl) is impl


def test_env_override_beats_name(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV_VAR, "naive")
    assert resolve_kernels("vectorized").name == "naive"
    assert resolve_kernels().name == "naive"


def test_env_override_never_beats_instance(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV_VAR, "naive")
    impl = resolve_kernels(get_kernels("vectorized"))
    assert impl.name == "vectorized"


def test_env_override_invalid_name(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV_VAR, "bogus")
    with pytest.raises(ConfigurationError, match="unknown kernel set"):
        resolve_kernels("vectorized")


def test_env_override_applies_to_checksum_dispatch(monkeypatch):
    matrix = random_spd(20, 90, seed=3)
    checksum = ChecksumMatrix.build(matrix, 4)
    assert checksum.kernel_name == DEFAULT_KERNEL
    monkeypatch.setenv(KERNEL_ENV_VAR, "naive")
    # The env override wins at evaluation time too.
    assert checksum._kernels().name == "naive"


def test_abft_config_accepts_registered_kernels():
    for name in available_kernels():
        assert AbftConfig(kernel=name).kernel == name


def test_abft_config_rejects_unknown_kernel():
    with pytest.raises(ConfigurationError, match="unknown kernel"):
        AbftConfig(kernel="nope")


class _StubKernels(NaiveKernels):
    name = "stub-kernels"


def test_register_custom_kernels_roundtrip():
    impl = _StubKernels()
    register_kernels(impl)
    try:
        assert "stub-kernels" in available_kernels()
        assert get_kernels("stub-kernels") is impl
        assert resolve_kernels("stub-kernels") is impl
        assert AbftConfig(kernel="stub-kernels").kernel == "stub-kernels"
    finally:
        unregister_kernels("stub-kernels")
    assert "stub-kernels" not in available_kernels()


def test_register_duplicate_requires_overwrite():
    impl = _StubKernels()
    register_kernels(impl)
    try:
        with pytest.raises(ConfigurationError, match="already registered"):
            register_kernels(_StubKernels())
        replacement = _StubKernels()
        assert register_kernels(replacement, overwrite=True) is replacement
        assert get_kernels("stub-kernels") is replacement
    finally:
        unregister_kernels("stub-kernels")


def test_register_rejects_non_kernelset():
    with pytest.raises(ConfigurationError, match="must subclass KernelSet"):
        register_kernels(object())


def test_builtin_kernels_cannot_be_unregistered():
    for name in BUILTIN_KERNELS:
        with pytest.raises(ConfigurationError, match="cannot be removed"):
            unregister_kernels(name)


def test_unregister_unknown_is_noop():
    unregister_kernels("never-registered")


def test_kernelset_is_abstract():
    with pytest.raises(TypeError):
        KernelSet()


def test_validate_blocks_rejects_float_dtype():
    with pytest.raises(ConfigurationError, match="must be integers"):
        validate_blocks(np.array([0.0, 1.0]), 4)


def test_validate_blocks_rejects_out_of_range():
    with pytest.raises(ConfigurationError, match="out of range"):
        validate_blocks(np.array([0, 4]), 4)
    with pytest.raises(ConfigurationError, match="out of range"):
        validate_blocks(np.array([-1]), 4)


def test_validate_blocks_accepts_empty_and_valid():
    assert validate_blocks(np.empty(0), 4).size == 0
    out = validate_blocks(np.array([3, 0], dtype=np.int32), 4)
    assert out.dtype == np.int64
    np.testing.assert_array_equal(out, [3, 0])


def test_make_weights_linear_dispatches_by_name():
    partition = BlockPartition(10, 4)
    for name in ("naive", "vectorized"):
        w = make_weights("linear", partition, kernel=name)
        np.testing.assert_array_equal(w, [1, 2, 3, 4, 1, 2, 3, 4, 1, 2])


def test_checksum_remembers_build_kernel():
    matrix = random_spd(16, 60, seed=4)
    for name in ("naive", "vectorized"):
        checksum = ChecksumMatrix.build(matrix, 4, kernel=name)
        assert checksum.kernel_name == name
        assert checksum._kernels().name == name
