"""Planned vs unplanned protected SpMV, single-thread and sharded.

The steady-state scenario: one matrix, many clean protected multiplies
(the ft_pcg inner loop).  Three contenders:

* ``unplanned``  — ``FaultTolerantSpMV.multiply`` with the vectorized
  kernels, allocating every temporary on every call;
* ``planned-1``  — ``operator.planned()`` with one shard: identical
  bits, zero steady-state allocations;
* ``parallel-4`` — the planned fused path over 4 nnz-balanced shards on
  the ``parallel`` backend.

Acceptance floors (checked where the hardware can express them):

* at full scale the planned single-thread loop must beat the unplanned
  loop — the zero-allocation plan has to pay for itself;
* with >= 4 usable cores the 4-worker fused path must reach 1.5x over
  the planned single-thread loop.

Results go to ``results/bench_parallel_plan.txt`` and machine-readable
``results/BENCH_parallel_plan.json`` (timings + env metadata including
``cpu_count``, so a 1-core CI run is distinguishable from a real one).
``REPRO_BENCH_SMOKE=1`` shrinks the problem to a CI-smoke size where
only correctness, not the speedup floors, is asserted.
"""

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import bench_env, write_json, write_result
from repro.core import AbftConfig, FaultTolerantSpMV
from repro.kernels.parallel import ParallelKernels
from repro.machine import ExecutionMeter
from repro.sparse import random_spd

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

N_ROWS = 5_000 if SMOKE else 100_000
NNZ = 60_000 if SMOKE else 1_200_000
BLOCK_SIZE = 64
N_WORKERS = 4
MULTIPLIES = 5 if SMOKE else 20
REPEATS = 3
MIN_PLANNED_SPEEDUP = 1.0  # planned-1 must strictly beat unplanned
MIN_PARALLEL_SPEEDUP = 1.5  # parallel-4 over planned-1, needs >= 4 cores


@pytest.fixture(scope="module")
def matrix():
    return random_spd(N_ROWS, NNZ, seed=42)


@pytest.fixture(scope="module")
def operand(matrix):
    return np.random.default_rng(43).standard_normal(matrix.n_cols)


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _loop(multiply, operator, b):
    meter = ExecutionMeter(machine=operator.machine)

    def run():
        for _ in range(MULTIPLIES):
            multiply(b, meter=meter)

    return run


def test_planned_and_parallel_speedups(matrix, operand, benchmark):
    config = AbftConfig(block_size=BLOCK_SIZE, kernel="vectorized")
    unplanned_op = FaultTolerantSpMV(matrix, config=config)
    planned_op = FaultTolerantSpMV(matrix, config=config)
    plan_1 = planned_op.planned(n_shards=1)

    parallel_op = FaultTolerantSpMV(
        matrix, config=AbftConfig(block_size=BLOCK_SIZE, kernel="parallel")
    )
    parallel_op.detector.kernels = ParallelKernels(
        n_workers=N_WORKERS, serial_cutoff=0
    )
    plan_4 = parallel_op.planned()
    assert plan_4.spmv.n_shards > 1

    reference = matrix.matvec(operand)
    for label, multiply in (
        ("unplanned", unplanned_op.multiply),
        ("planned-1", plan_1.multiply),
        (f"parallel-{N_WORKERS}", plan_4.multiply),
    ):
        value = multiply(operand).value
        np.testing.assert_array_equal(value, reference, err_msg=label)

    timings = {
        "unplanned": _best_of(_loop(unplanned_op.multiply, unplanned_op, operand)),
        "planned-1": _best_of(_loop(plan_1.multiply, planned_op, operand)),
        f"parallel-{N_WORKERS}": _best_of(
            _loop(plan_4.multiply, parallel_op, operand)
        ),
    }
    speedups = {
        "planned_vs_unplanned": timings["unplanned"] / timings["planned-1"],
        "parallel_vs_planned": timings["planned-1"]
        / timings[f"parallel-{N_WORKERS}"],
    }
    cpu_count = os.cpu_count() or 1
    enough_cores = cpu_count >= N_WORKERS

    lines = [
        "Planned / sharded protected SpMV "
        f"(random SPD, n={N_ROWS}, nnz={NNZ}, block size {BLOCK_SIZE}, "
        f"{MULTIPLIES} multiplies per run, cpu_count={cpu_count})",
        "",
        f"{'variant':<12} {'loop [ms]':>12} {'per call [ms]':>14}",
    ]
    for label, seconds in timings.items():
        lines.append(
            f"{label:<12} {1e3 * seconds:>12.3f} "
            f"{1e3 * seconds / MULTIPLIES:>14.3f}"
        )
    lines += [
        "",
        f"planned-1 vs unplanned: {speedups['planned_vs_unplanned']:.2f}x",
        f"parallel-{N_WORKERS} vs planned-1: "
        f"{speedups['parallel_vs_planned']:.2f}x"
        + ("" if enough_cores else f"  [not asserted: {cpu_count} core(s)]"),
    ]
    write_result("bench_parallel_plan", "\n".join(lines))
    write_json(
        "parallel_plan",
        {
            "benchmark": "parallel_plan",
            "config": {
                "n_rows": N_ROWS,
                "nnz": NNZ,
                "block_size": BLOCK_SIZE,
                "n_workers": N_WORKERS,
                "multiplies_per_run": MULTIPLIES,
                "repeats": REPEATS,
                "smoke": SMOKE,
            },
            "timings_ms": {k: 1e3 * v for k, v in timings.items()},
            "speedups": speedups,
            "floors": {
                "planned_vs_unplanned": MIN_PLANNED_SPEEDUP,
                "parallel_vs_planned": MIN_PARALLEL_SPEEDUP,
            },
            "asserted": {
                "planned_vs_unplanned": not SMOKE,
                "parallel_vs_planned": enough_cores and not SMOKE,
            },
            "env": bench_env(),
        },
    )

    # Smoke runs only prove the harness executes end to end; the floors
    # are claims about steady-state sizes on real hardware.
    if not SMOKE:
        assert speedups["planned_vs_unplanned"] > MIN_PLANNED_SPEEDUP
        if enough_cores:
            assert speedups["parallel_vs_planned"] >= MIN_PARALLEL_SPEEDUP

    benchmark.pedantic(
        lambda: plan_1.multiply(operand), rounds=3, iterations=1
    )
