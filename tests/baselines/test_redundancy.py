"""Unit tests for the DWC and TMR redundancy baselines."""

import numpy as np
import pytest

from repro.baselines import DwcSpMV, TmrSpMV
from repro.baselines.redundancy import _contiguous_ranges
from repro.core import FaultTolerantSpMV
from repro.machine import ExecutionMeter
from repro.sparse import random_spd


@pytest.fixture(scope="module")
def matrix():
    return random_spd(256, 2500, seed=181)


@pytest.fixture()
def b():
    return np.random.default_rng(181).standard_normal(256)


def strike_nth_execution(n, index, delta):
    """Corrupt only the n-th 'result' stage call (1-based)."""
    state = {"calls": 0}

    def hook(stage, data, work):
        if stage == "result":
            state["calls"] += 1
            if state["calls"] == n:
                data[index] += delta

    return hook


def test_contiguous_ranges():
    assert _contiguous_ranges(np.array([], dtype=np.int64)) == []
    assert _contiguous_ranges(np.array([3])) == [(3, 4)]
    assert _contiguous_ranges(np.array([1, 2, 3, 7, 9, 10])) == [
        (1, 4), (7, 8), (9, 11)
    ]


def test_dwc_clean(matrix, b):
    result = DwcSpMV(matrix).multiply(b)
    assert result.clean
    np.testing.assert_array_equal(result.value, matrix.matvec(b))


def test_dwc_detects_and_corrects_single_copy_error(matrix, b):
    result = DwcSpMV(matrix).multiply(b, tamper=strike_nth_execution(1, 40, 3.0))
    assert result.detections[0]
    assert result.corrections == ((40, 41),)
    np.testing.assert_array_equal(result.value, matrix.matvec(b))


def test_dwc_error_in_second_copy_also_fixed(matrix, b):
    result = DwcSpMV(matrix).multiply(b, tamper=strike_nth_execution(2, 99, -2.0))
    assert result.detections[0]
    np.testing.assert_array_equal(result.value, matrix.matvec(b))


def test_dwc_nan_detected(matrix, b):
    result = DwcSpMV(matrix).multiply(
        b, tamper=strike_nth_execution(1, 7, np.nan)
    )
    assert result.detections[0]
    np.testing.assert_array_equal(result.value, matrix.matvec(b))


def test_dwc_misses_identical_errors_in_both_copies(matrix, b):
    """The known DWC blind spot: correlated identical corruption."""

    def hook(stage, data, work):
        if stage == "result":
            data[5] += 1.0  # both copies corrupted identically

    result = DwcSpMV(matrix).multiply(b, tamper=hook)
    assert not result.detections[0]
    assert result.value[5] != matrix.matvec(b)[5]


def test_tmr_clean(matrix, b):
    result = TmrSpMV(matrix).multiply(b)
    assert result.clean
    np.testing.assert_array_equal(result.value, matrix.matvec(b))


def test_tmr_outvotes_single_copy_error(matrix, b):
    for n in (1, 2, 3):
        result = TmrSpMV(matrix).multiply(
            b, tamper=strike_nth_execution(n, 123, 9.0)
        )
        assert result.detections[0]
        np.testing.assert_array_equal(result.value, matrix.matvec(b))


def test_redundancy_costs_dominate_abft_at_scale(matrix, b):
    """Section II's point: duplication/triplication is the expensive way.

    Caveat the model makes visible: on a *tiny* matrix an idle device
    absorbs the duplicate execution almost for free while ABFT pays its
    fixed check latency — redundancy only loses once real work dominates.
    """
    big = random_spd(4000, 500_000, locality=0.05, seed=182)
    rhs = np.random.default_rng(182).standard_normal(4000)
    meter = ExecutionMeter()
    FaultTolerantSpMV(big, block_size=32).plain_multiply(rhs, meter=meter)
    plain = meter.seconds

    ours = FaultTolerantSpMV(big, block_size=32).multiply(rhs).seconds
    dwc = DwcSpMV(big).multiply(rhs).seconds
    tmr = TmrSpMV(big).multiply(rhs).seconds
    assert ours < dwc < tmr
    assert tmr > 1.5 * plain  # triplication is at least ~2x and then some


def test_dwc_meter_accumulates(matrix, b):
    meter = ExecutionMeter()
    scheme = DwcSpMV(matrix)
    r1 = scheme.multiply(b, meter=meter)
    r2 = scheme.multiply(b, meter=meter)
    assert meter.seconds == pytest.approx(r1.seconds + r2.seconds)
