"""Fixture: reductions inside the sanctioned helpers are allowed."""

import numpy as np


def segment_sums(values, offsets):
    return np.add.reduceat(values, offsets[:-1])


def flat_segment_indices(starts, stops):
    lengths = stops - starts
    offsets = np.cumsum(lengths)
    return np.repeat(starts, lengths), offsets


def gather(values, indices):
    return values[indices]
