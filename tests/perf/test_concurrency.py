"""Thread-safety and worker-count determinism for the parallel backend.

Two properties make ``parallel`` safe to enable by default:

* determinism — every kernel and every planned multiply produces the
  same bits no matter how many workers execute it (shards are fixed by
  the plan, floating-point order never depends on scheduling);
* telemetry safety — concurrent instrumented operators sharing one
  :class:`~repro.obs.Telemetry` lose no counter increments and never
  corrupt span nesting (span stacks are thread-local).
"""

import threading

import numpy as np
import pytest

from repro.core import AbftConfig, FaultTolerantSpMV
from repro.core.blocking import BlockPartition
from repro.kernels.parallel import ParallelKernels
from repro.kernels.vectorized import VectorizedKernels
from repro.obs import InMemoryExporter, Telemetry
from repro.perf import ProtectedPlan
from repro.sparse import random_spd

N = 256
BLOCK = 32
WORKER_COUNTS = (1, 2, 3, 4)


@pytest.fixture
def matrix():
    return random_spd(N, 2500, seed=33)


@pytest.fixture
def b():
    return np.random.default_rng(33).standard_normal(N)


@pytest.fixture
def partition():
    return BlockPartition(N, BLOCK)


def _sharded(n_workers):
    """A parallel kernel set that shards even tiny inputs."""
    return ParallelKernels(n_workers=n_workers, serial_cutoff=0)


# ----------------------------------------------------------------------
# Worker-count determinism of the kernels themselves
# ----------------------------------------------------------------------
def test_result_checksums_identical_across_worker_counts(matrix, b, partition):
    weights = VectorizedKernels().linear_weights(partition)
    r = matrix.matvec(b)
    reference = VectorizedKernels().result_checksums(weights, r, partition)
    for n_workers in WORKER_COUNTS:
        np.testing.assert_array_equal(
            _sharded(n_workers).result_checksums(weights, r, partition), reference
        )


def test_blockwise_kernels_identical_across_worker_counts(matrix, b, partition):
    weights = VectorizedKernels().linear_weights(partition)
    r = matrix.matvec(b)
    blocks = np.array([0, 2, 3, 7], dtype=np.int64)
    ref = VectorizedKernels().result_checksums_for_blocks(weights, r, partition, blocks)
    ref_rows, _ = VectorizedKernels().row_checksums(matrix, np.arange(0, N, 7), b)
    for n_workers in WORKER_COUNTS:
        kernels = _sharded(n_workers)
        np.testing.assert_array_equal(
            kernels.result_checksums_for_blocks(weights, r, partition, blocks), ref
        )
        rows, _ = kernels.row_checksums(matrix, np.arange(0, N, 7), b)
        np.testing.assert_array_equal(rows, ref_rows)


def test_correct_blocks_identical_across_worker_counts(matrix, b, partition):
    blocks = np.array([1, 4, 5], dtype=np.int64)
    reference = matrix.matvec(b)
    for n_workers in WORKER_COUNTS:
        r = np.zeros(N)  # every flagged row is wrong before correction
        rows, nnz = _sharded(n_workers).correct_blocks(
            matrix, partition, b, r, blocks, None
        )
        assert rows == BLOCK * blocks.size
        for block in blocks:
            lo, hi = block * BLOCK, (block + 1) * BLOCK
            np.testing.assert_array_equal(r[lo:hi], reference[lo:hi])


def test_multi_rhs_kernels_identical_across_worker_counts(matrix, partition):
    rng = np.random.default_rng(7)
    r = rng.standard_normal((N, 5))
    weights = VectorizedKernels().linear_weights(partition)
    ref = VectorizedKernels().result_checksums_multi(r, partition, weights)
    blocks = np.array([0, 3], dtype=np.int64)
    ref_blocks = VectorizedKernels().result_checksums_multi_for_blocks(
        r, partition, blocks, weights
    )
    for n_workers in WORKER_COUNTS:
        kernels = _sharded(n_workers)
        np.testing.assert_array_equal(
            kernels.result_checksums_multi(r, partition, weights), ref
        )
        np.testing.assert_array_equal(
            kernels.result_checksums_multi_for_blocks(r, partition, blocks, weights),
            ref_blocks,
        )


def test_planned_multiply_identical_across_worker_counts(matrix, b):
    reference = FaultTolerantSpMV(
        matrix, config=AbftConfig(block_size=BLOCK, kernel="vectorized")
    ).multiply(b)
    for n_workers in WORKER_COUNTS:
        op = FaultTolerantSpMV(
            matrix, config=AbftConfig(block_size=BLOCK, kernel="parallel")
        )
        op.detector.kernels = _sharded(n_workers)
        # Bit-identity with the unplanned reference is the CSR contract;
        # pin it against REPRO_FORMAT overrides.
        planned = op.planned(sparse_format="csr").multiply(b)
        np.testing.assert_array_equal(planned.value, reference.value)
        assert planned.detected == reference.detected
        assert planned.seconds == reference.seconds
        assert planned.flops == reference.flops


# ----------------------------------------------------------------------
# Shared telemetry under concurrency
# ----------------------------------------------------------------------
def test_shared_telemetry_counts_every_multiply_exactly_once(matrix, b):
    n_threads, repeats = 4, 5
    telemetry = Telemetry(exporter=InMemoryExporter())
    operators = [
        FaultTolerantSpMV(matrix, block_size=BLOCK, telemetry=telemetry)
        for _ in range(n_threads)
    ]
    barrier = threading.Barrier(n_threads)
    failures = []

    def run(op):
        try:
            barrier.wait()
            plan = op.planned(sparse_format="csr")
            for _ in range(repeats):
                value = plan.multiply(b).value
                np.testing.assert_array_equal(value, matrix.matvec(b))
        except Exception as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    threads = [threading.Thread(target=run, args=(op,)) for op in operators]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures
    total = n_threads * repeats
    assert telemetry.registry.counter("abft.checks").value == total
    spans = telemetry.registry.histogram("span.abft.multiply.seconds")
    assert spans.snapshot()["count"] == total
    multiply_events = [
        e for e in telemetry.events()
        if e["type"] == "span" and e["name"] == "abft.multiply"
    ]
    assert len(multiply_events) == total
    # Span stacks are thread-local: a multiply span never adopts another
    # thread's span as parent.
    assert all(e["parent"] is None and e["depth"] == 0 for e in multiply_events)


def test_threaded_plan_shard_spans_report_owner(matrix, b):
    telemetry = Telemetry(exporter=InMemoryExporter())
    op = FaultTolerantSpMV(
        matrix,
        config=AbftConfig(block_size=BLOCK, kernel="parallel"),
        telemetry=telemetry,
    )
    op.detector.kernels = op.telemetry.wrap_kernels(_sharded(3))
    # Pin the backend under test: this asserts *thread* span semantics,
    # which a REPRO_PARALLEL override must not redirect.
    plan = ProtectedPlan(op, n_shards=3, parallel="threads", sparse_format="csr")
    assert plan.spmv.n_shards == 3
    plan.multiply(b)
    shard_spans = [
        e for e in telemetry.events()
        if e["type"] == "span" and e["name"] == "plan.shard"
    ]
    assert sorted(e["attrs"]["shard"] for e in shard_spans) == [0, 1, 2]
    # Worker threads have their own (empty) span stacks, so a shard span
    # is a per-thread root rather than a child of the submitting thread's
    # abft.detect span.
    assert all(e["parent"] is None and e["depth"] == 0 for e in shard_spans)
