"""Command-line entry point: ``python -m repro.lint [paths...]``.

Exit codes:

* 0 — no findings beyond the baseline;
* 1 — new findings (or stale baseline entries under ``--strict-baseline``);
* 2 — usage or configuration errors (unknown rules, bad paths, bad
  baseline documents).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.errors import ConfigurationError, ReproError
from repro.lint.baseline import (
    compare_with_baseline,
    find_default_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import LintResult, lint_paths
from repro.lint.project import CACHE_FILENAME, analyze_project
from repro.lint.registry import available_rules, get_rule
from repro.lint.reporters import FORMATS, render

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="reprolint — ABFT-invariant static analysis for this repo",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to lint"
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text", help="report format"
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="write the report to a file"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: nearest .reprolint-baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help="also fail when baseline entries no longer match any finding",
    )
    parser.add_argument(
        "--select", default=None, help="comma-separated rule ids to run"
    )
    parser.add_argument(
        "--ignore", default=None, help="comma-separated rule ids to skip"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule pack and exit"
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="run the project-wide rules (ABFT008+) over the whole tree "
        "instead of the per-file rules",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        help=f"project-mode summary cache file (default: ./{CACHE_FILENAME})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="project mode: re-analyze every file, ignore and skip the cache",
    )
    return parser


def _split_rules(value: Optional[str]) -> Optional[tuple[str, ...]]:
    if value is None:
        return None
    return tuple(part.strip() for part in value.split(",") if part.strip())


def _list_rules() -> str:
    lines = []
    for rule_id in available_rules():
        rule = get_rule(rule_id)
        lines.append(f"{rule_id}  {rule.title}")
    return "\n".join(lines) + "\n"


def _emit(text: str, output: Optional[Path]) -> None:
    if output is None:
        sys.stdout.write(text)
    else:
        output.write_text(text, encoding="utf-8")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _emit(_list_rules(), args.output)
        return EXIT_CLEAN

    try:
        project_stats: Optional[Dict[str, int]] = None
        if args.project:
            cache_path: Optional[Path] = None
            if not args.no_cache:
                cache_path = args.cache or Path.cwd() / CACHE_FILENAME
            project_result = analyze_project(
                [Path(p) for p in args.paths],
                select=_split_rules(args.select),
                ignore=_split_rules(args.ignore),
                cache_path=cache_path,
            )
            result = LintResult(
                findings=project_result.findings,
                suppressed=project_result.suppressed,
                reasonless_suppressions=project_result.reasonless_suppressions,
                files_checked=project_result.files_checked,
            )
            project_stats = {
                "cache_hits": project_result.cache_hits,
                "reanalyzed": project_result.reanalyzed,
            }
        else:
            result = lint_paths(
                [Path(p) for p in args.paths],
                select=_split_rules(args.select),
                ignore=_split_rules(args.ignore),
            )

        baseline_path = args.baseline
        if baseline_path is None and not args.no_baseline:
            first = Path(args.paths[0]) if args.paths else Path.cwd()
            anchor = first if first.exists() else Path.cwd()
            baseline_path, exists = find_default_baseline(anchor)
            if not exists and not args.write_baseline:
                baseline_path = None

        if args.write_baseline:
            target = baseline_path or Path.cwd() / ".reprolint-baseline.json"
            write_baseline(target, result.findings)
            sys.stderr.write(
                f"wrote baseline with {len(result.findings)} finding(s) to {target}\n"
            )
            return EXIT_CLEAN

        baseline = (
            load_baseline(baseline_path)
            if baseline_path is not None and not args.no_baseline
            else {}
        )
        comparison = compare_with_baseline(result.findings, baseline)
    except ReproError as exc:
        sys.stderr.write(f"repro.lint: error: {exc}\n")
        return EXIT_USAGE

    report = render(
        args.format,
        comparison.new,
        known=comparison.known,
        files_checked=result.files_checked,
        suppressed=result.suppressed,
        project=project_stats,
    )
    _emit(report, args.output)

    if comparison.stale:
        sys.stderr.write(
            f"repro.lint: {len(comparison.stale)} stale baseline entr"
            f"{'y' if len(comparison.stale) == 1 else 'ies'} "
            "(fixed findings — regenerate with --write-baseline)\n"
        )
        if args.strict_baseline:
            return EXIT_FINDINGS
    if comparison.new:
        return EXIT_FINDINGS
    return EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
