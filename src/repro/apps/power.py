"""Protected power iteration and PageRank (paper Section III-E).

The paper names "graph-based applications such as PageRank and Random Walk
with Restart" as direct beneficiaries: their inner loop is one SpMV per
step over a *fixed* matrix, so the checksum matrix is built once and
amortizes perfectly.  This module provides both the generic dominant-
eigenvector power iteration and PageRank on top of it, each with optional
block-ABFT protection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.corrector import TamperHook
from repro.core.protected import FaultTolerantSpMV, plain_spmv
from repro.errors import ConfigurationError, ShapeMismatchError
from repro.machine import ExecutionMeter, Machine
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix


@dataclass(frozen=True)
class PowerIterationResult:
    """Outcome of a (possibly protected) power iteration.

    Attributes:
        vector: final normalized iterate.
        eigenvalue: Rayleigh-quotient estimate of the dominant eigenvalue.
        iterations: steps performed.
        converged: iterate movement fell below the tolerance.
        detections: multiplies in which the ABFT check fired (0 when
            running unprotected).
        seconds / flops: simulated cost.
    """

    vector: np.ndarray
    eigenvalue: float
    iterations: int
    converged: bool
    detections: int
    seconds: float
    flops: float


def power_iteration(
    matrix: CsrMatrix,
    tol: float = 1e-10,
    max_iterations: int = 1000,
    protected: bool = True,
    block_size: int = 32,
    seed: int = 0,
    tamper: Optional[TamperHook] = None,
    machine: Optional[Machine] = None,
) -> PowerIterationResult:
    """Dominant eigenpair of a square matrix by power iteration.

    Args:
        matrix: square matrix (SpMV per step).
        tol: L2 movement threshold between normalized iterates.
        max_iterations: step budget.
        protected: protect each SpMV with block ABFT.
        block_size: ABFT block size.
        seed: seeds the random start vector.
        tamper: optional fault hook (forwarded to every multiply).
        machine: simulated device.

    Raises:
        ShapeMismatchError: for non-square matrices.
        ConfigurationError: for non-positive tolerances/budgets.
    """
    if matrix.shape[0] != matrix.shape[1]:
        raise ShapeMismatchError(f"need a square matrix, got {matrix.shape}")
    if tol <= 0:
        raise ConfigurationError(f"tol must be positive, got {tol}")
    if max_iterations < 1:
        raise ConfigurationError(f"max_iterations must be >= 1, got {max_iterations}")

    machine = machine or Machine()
    meter = ExecutionMeter(machine=machine)
    operator = (
        FaultTolerantSpMV(matrix, block_size=block_size, machine=machine)
        if protected
        else None
    )
    rng = np.random.default_rng(seed)
    vector = rng.standard_normal(matrix.n_rows)
    vector /= np.linalg.norm(vector)

    detections = 0
    converged = False
    iterations = 0
    next_vector = vector
    for iterations in range(1, max_iterations + 1):
        if operator is not None:
            result = operator.multiply(vector, tamper=tamper, meter=meter)
            detections += int(bool(result.detected[0]))
            image = result.value
        else:
            image = plain_spmv(matrix, vector, meter=meter, tamper=tamper)
        norm = float(np.linalg.norm(image))
        # reprolint: disable=ABFT003 -- exact-zero iterate guard: only a true
        # zero image (nilpotent direction) stops the iteration
        if not np.isfinite(norm) or norm == 0.0:
            break  # corrupted beyond repair or nilpotent direction
        next_vector = image / norm
        # Sign-align so symmetric spectra do not oscillate the test below.
        if float(np.dot(next_vector, vector)) < 0:
            next_vector = -next_vector
        movement = float(np.linalg.norm(next_vector - vector))
        vector = next_vector
        if movement < tol:
            converged = True
            break

    image = matrix.matvec(vector)
    eigenvalue = float(np.dot(vector, image))
    seconds, flops = meter.snapshot()
    return PowerIterationResult(
        vector=vector,
        eigenvalue=eigenvalue,
        iterations=iterations,
        converged=converged,
        detections=detections,
        seconds=seconds,
        flops=flops,
    )


def build_link_matrix(
    edges: np.ndarray, n_pages: int
) -> CsrMatrix:
    """Column-stochastic link matrix from a ``(source, target)`` edge list.

    Dangling pages (no outgoing links) keep an all-zero column; the
    PageRank iteration redistributes their mass uniformly.
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ShapeMismatchError(f"edges must be (m, 2), got {edges.shape}")
    if edges.size and (edges.min() < 0 or edges.max() >= n_pages):
        raise ConfigurationError("edge endpoint out of range")
    sources, targets = edges[:, 0], edges[:, 1]
    out_degree = np.bincount(sources, minlength=n_pages).astype(np.float64)
    safe_degree = np.where(out_degree == 0, 1.0, out_degree)
    weights = 1.0 / safe_degree[sources]
    return CooMatrix((n_pages, n_pages), targets, sources, weights).to_csr()


def pagerank(
    link_matrix: CsrMatrix,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 200,
    protected: bool = True,
    block_size: int = 32,
    tamper: Optional[TamperHook] = None,
    machine: Optional[Machine] = None,
) -> Tuple[np.ndarray, PowerIterationResult]:
    """PageRank over a column-stochastic link matrix.

    Returns ``(ranks, diagnostics)`` where ranks sum to 1.  Each step is
    one (optionally protected) SpMV plus the damping/teleport update.
    """
    if not 0.0 < damping < 1.0:
        raise ConfigurationError(f"damping must be in (0, 1), got {damping}")
    if link_matrix.shape[0] != link_matrix.shape[1]:
        raise ShapeMismatchError(f"need a square link matrix, got {link_matrix.shape}")
    n = link_matrix.n_rows
    machine = machine or Machine()
    meter = ExecutionMeter(machine=machine)
    operator = (
        FaultTolerantSpMV(link_matrix, block_size=block_size, machine=machine)
        if protected
        else None
    )
    ranks = np.full(n, 1.0 / n)
    detections = 0
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        if operator is not None:
            result = operator.multiply(ranks, tamper=tamper, meter=meter)
            detections += int(bool(result.detected[0]))
            spread = result.value
        else:
            spread = plain_spmv(link_matrix, ranks, meter=meter, tamper=tamper)
        with np.errstate(invalid="ignore", over="ignore"):
            fresh = damping * spread + (1.0 - damping * float(spread.sum())) / n
            total = float(fresh.sum())
        if not np.isfinite(total) or total <= 0:
            break
        fresh /= total
        movement = float(np.abs(fresh - ranks).sum())
        ranks = fresh
        if movement < tol:
            converged = True
            break
    seconds, flops = meter.snapshot()
    diagnostics = PowerIterationResult(
        vector=ranks,
        eigenvalue=1.0,
        iterations=iterations,
        converged=converged,
        detections=detections,
        seconds=seconds,
        flops=flops,
    )
    return ranks, diagnostics
