"""Dispatch-level kernel timing: a :class:`KernelSet` decorator.

:class:`TimedKernels` wraps any registered kernel set (naive, vectorized
or a custom one) and records the wall time of every hot-path call into a
``kernel.<op>.seconds`` histogram, tagging each event with the wrapped
set's name.  Wrapping happens at *dispatch* level —
:meth:`repro.obs.telemetry.Telemetry.wrap_kernels` — so both built-in
kernel sets (and any future one) are covered without touching their code,
and the disabled path never sees the wrapper at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.kernels.base import KernelSet, Tamper
from repro.obs.instruments import DEFAULT_TIME_BUCKETS

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.blocking import BlockPartition
    from repro.obs.telemetry import Telemetry
    from repro.sparse.csr import CsrMatrix


class TimedKernels(KernelSet):
    """A kernel set whose every call is timed into the telemetry.

    The wrapper is numerically transparent: all arguments and results
    pass through unchanged, and :attr:`name` reports the wrapped set's
    name so checksum/kernel accounting is unaffected.
    """

    def __init__(self, inner: KernelSet, telemetry: "Telemetry") -> None:
        if isinstance(inner, TimedKernels):  # never stack wrappers
            inner = inner.inner
        self.inner = inner
        self.name = inner.name
        self._telemetry = telemetry

    def _record(self, op: str, t0: float) -> None:
        telemetry = self._telemetry
        # reprolint: disable=ABFT013 -- wrap_kernels never installs this
        # wrapper for disabled telemetry, so every _record call is already
        # behind the enabled check made at wrap time.
        telemetry.observe(
            f"kernel.{op}.seconds",
            telemetry.now() - t0,
            buckets=DEFAULT_TIME_BUCKETS,
            kernel=self.name,
        )

    # -- weights / encoding ------------------------------------------------
    def linear_weights(self, partition: "BlockPartition") -> np.ndarray:
        t0 = self._telemetry.now()
        out = self.inner.linear_weights(partition)
        self._record("linear_weights", t0)
        return out

    def encode(
        self,
        source: "CsrMatrix",
        partition: "BlockPartition",
        weights: np.ndarray,
    ) -> "CsrMatrix":
        t0 = self._telemetry.now()
        out = self.inner.encode(source, partition, weights)
        self._record("encode", t0)
        return out

    # -- detection ---------------------------------------------------------
    def result_checksums(
        self,
        weights: np.ndarray,
        r: np.ndarray,
        partition: "BlockPartition",
        out: Optional[np.ndarray] = None,
        workspace: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        t0 = self._telemetry.now()
        result = self.inner.result_checksums(
            weights, r, partition, out=out, workspace=workspace
        )
        self._record("result_checksums", t0)
        return result

    def result_checksums_for_blocks(
        self,
        weights: np.ndarray,
        r: np.ndarray,
        partition: "BlockPartition",
        blocks: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        t0 = self._telemetry.now()
        result = self.inner.result_checksums_for_blocks(
            weights, r, partition, blocks, out=out
        )
        self._record("result_checksums_for_blocks", t0)
        return result

    def compare_syndromes(
        self, t1: np.ndarray, t2: np.ndarray, thresholds: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        t0 = self._telemetry.now()
        out = self.inner.compare_syndromes(t1, t2, thresholds)
        self._record("compare_syndromes", t0)
        return out

    # -- correction --------------------------------------------------------
    def correct_blocks(
        self,
        matrix: "CsrMatrix",
        partition: "BlockPartition",
        b: np.ndarray,
        r: np.ndarray,
        blocks: np.ndarray,
        tamper: Tamper = None,
    ) -> Tuple[int, int]:
        t0 = self._telemetry.now()
        out = self.inner.correct_blocks(matrix, partition, b, r, blocks, tamper)
        self._record("correct_blocks", t0)
        return out

    def row_checksums(
        self, csr: "CsrMatrix", rows: np.ndarray, b: np.ndarray
    ) -> Tuple[np.ndarray, int]:
        t0 = self._telemetry.now()
        out = self.inner.row_checksums(csr, rows, b)
        self._record("row_checksums", t0)
        return out

    # -- multi-RHS (SpMM) --------------------------------------------------
    def result_checksums_multi(
        self,
        r: np.ndarray,
        partition: "BlockPartition",
        weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        t0 = self._telemetry.now()
        out = self.inner.result_checksums_multi(r, partition, weights)
        self._record("result_checksums_multi", t0)
        return out

    def result_checksums_multi_for_blocks(
        self,
        r: np.ndarray,
        partition: "BlockPartition",
        blocks: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        t0 = self._telemetry.now()
        out = self.inner.result_checksums_multi_for_blocks(r, partition, blocks, weights)
        self._record("result_checksums_multi_for_blocks", t0)
        return out

    def compare_syndromes_multi(
        self, t1: np.ndarray, t2: np.ndarray, thresholds: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        t0 = self._telemetry.now()
        out = self.inner.compare_syndromes_multi(t1, t2, thresholds)
        self._record("compare_syndromes_multi", t0)
        return out

    def correct_cells(
        self,
        matrix: "CsrMatrix",
        partition: "BlockPartition",
        b: np.ndarray,
        r: np.ndarray,
        cells: np.ndarray,
        tamper: Tamper = None,
    ) -> Tuple[int, int]:
        t0 = self._telemetry.now()
        out = self.inner.correct_cells(matrix, partition, b, r, cells, tamper)
        self._record("correct_cells", t0)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TimedKernels {self.name!r}>"
