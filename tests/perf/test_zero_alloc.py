"""tracemalloc regression: the planned steady-state loop stops allocating.

The plan's whole reason to exist is that after warmup a protected
multiply touches only preallocated buffers.  These tests pin that with
tracemalloc at a size where any per-call array temporary (160 KB for an
n-vector, ~1 MB for an nnz workspace at this shape) dwarfs the thresholds.
"""

import gc
import tracemalloc

import numpy as np
import pytest

from repro.core import FaultTolerantSpMV
from repro.machine import ExecutionMeter
from repro.obs import Telemetry
from repro.sparse import random_spd

N = 20_000
NNZ = 120_000
BLOCK = 256

#: Net retained growth allowed across the measured calls (python object
#: churn only — any leaked array at this size is orders beyond this).
NET_BUDGET = 16 * 1024
#: Transient peak allowed over the baseline — far below one n-vector.
PEAK_BUDGET = 64 * 1024


@pytest.fixture(scope="module")
def operator():
    # Telemetry is pinned off regardless of REPRO_OBS: enabled telemetry
    # allocates event dicts (and the JSONL exporter buffers pending
    # batches) by design, which this test would misread as a leak in the
    # numeric buffer discipline.  Telemetry cost has its own budget in
    # benchmarks/bench_obs_overhead.py.
    return FaultTolerantSpMV(
        random_spd(N, NNZ, seed=5),
        block_size=BLOCK,
        telemetry=Telemetry(enabled=False),
    )


@pytest.fixture(scope="module")
def b():
    return np.random.default_rng(5).standard_normal(N)


def _traced(callable_, repeats):
    """(net growth, transient peak) in bytes over ``repeats`` calls."""
    gc.collect()
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        for _ in range(repeats):
            callable_()
        gc.collect()
        current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return current - before, peak - before


def test_planned_multiply_allocates_nothing_after_warmup(operator, b):
    # Budgets are calibrated against CSR shard buffers; pin the format so
    # a REPRO_FORMAT override doesn't change the storage under test.
    plan = operator.planned(sparse_format="csr")
    meter = ExecutionMeter(machine=operator.machine)
    for _ in range(3):  # warmup: buffers built, caches resolved
        plan.multiply(b, meter=meter)
    net, peak = _traced(lambda: plan.multiply(b, meter=meter), repeats=5)
    assert net < NET_BUDGET, f"steady-state loop retained {net} bytes"
    assert peak < PEAK_BUDGET, f"steady-state loop transiently allocated {peak} bytes"


def test_unplanned_multiply_does_allocate(operator, b):
    """Sanity check that the assertion above has teeth: the unplanned
    multiply materializes at least the result vector every call."""
    meter = ExecutionMeter(machine=operator.machine)
    for _ in range(2):
        operator.multiply(b, meter=meter)
    _, peak = _traced(lambda: operator.multiply(b, meter=meter), repeats=1)
    assert peak > N * 8


def test_planned_result_bits_survive_the_buffer_discipline(operator, b):
    """Zero allocation must not come at the price of drift: after many
    reuses the planned product still equals a fresh matvec bitwise."""
    plan = operator.planned(sparse_format="csr")
    for _ in range(10):
        value = plan.multiply(b).value
    np.testing.assert_array_equal(value, operator.matrix.matvec(b))
