"""Unit tests for matrix inspection and validation."""

import numpy as np
import pytest

from repro.errors import SingularMatrixError, SparseFormatError
from repro.sparse import CooMatrix, banded_spd, random_spd
from repro.sparse.validate import assert_spd_like, inspect_matrix, render_report


@pytest.fixture
def spd():
    return banded_spd(40, 3, 0.9, seed=201)


def test_inspect_spd(spd):
    report = inspect_matrix(spd)
    assert report.shape == (40, 40)
    assert report.symmetric
    assert report.positive_diagonal
    assert report.weakly_diagonally_dominant
    assert report.bandwidth <= 3
    assert report.empty_rows == 0
    assert report.min_row_degree >= 1
    assert report.mean_row_degree == pytest.approx(spd.nnz / 40)


def test_inspect_rectangular():
    rect = CooMatrix.from_entries((2, 3), [(0, 0, 1.0)]).to_csr()
    report = inspect_matrix(rect)
    assert not report.symmetric
    assert not report.weakly_diagonally_dominant


def test_inspect_counts_empty_rows():
    matrix = CooMatrix.from_entries((5, 5), [(0, 0, 1.0), (4, 4, 1.0)]).to_csr()
    assert inspect_matrix(matrix).empty_rows == 3


def test_assert_spd_like_accepts_suite_matrices(spd):
    assert_spd_like(spd)
    assert_spd_like(random_spd(60, 500, seed=202))


def test_assert_spd_like_rejects_rectangular():
    rect = CooMatrix.from_entries((2, 3), [(0, 0, 1.0)]).to_csr()
    with pytest.raises(SparseFormatError):
        assert_spd_like(rect)


def test_assert_spd_like_rejects_asymmetric():
    asym = CooMatrix.from_entries(
        (2, 2), [(0, 0, 2.0), (1, 1, 2.0), (0, 1, 1.0)]
    ).to_csr()
    with pytest.raises(SparseFormatError):
        assert_spd_like(asym)


def test_assert_spd_like_rejects_negative_diagonal():
    bad = CooMatrix.from_dense(np.diag([1.0, -1.0])).to_csr()
    with pytest.raises(SingularMatrixError):
        assert_spd_like(bad)


def test_assert_spd_like_rejects_non_dominant():
    dense = np.array([[1.0, 5.0], [5.0, 1.0]])
    with pytest.raises(SingularMatrixError):
        assert_spd_like(CooMatrix.from_dense(dense).to_csr())


def test_render_report(spd):
    text = render_report(inspect_matrix(spd))
    assert "40 x 40" in text
    assert "symmetric            yes" in text
    assert "bandwidth" in text
