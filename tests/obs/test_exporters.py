"""Exporter behavior and the exporter registry contract."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    BUILTIN_EXPORTERS,
    EVENTS_DROPPED_COUNTER,
    Exporter,
    InMemoryExporter,
    JsonlExporter,
    NullExporter,
    RingBufferExporter,
    TextSummaryExporter,
    available_exporters,
    make_exporter,
    register_exporter,
    unregister_exporter,
)


def test_builtins_are_available():
    names = available_exporters()
    for builtin in BUILTIN_EXPORTERS:
        assert builtin in names


def test_make_exporter_instantiates_builtins():
    assert isinstance(make_exporter("off"), NullExporter)
    assert isinstance(make_exporter("memory"), InMemoryExporter)
    assert isinstance(make_exporter("jsonl"), JsonlExporter)
    assert isinstance(make_exporter("ring"), RingBufferExporter)
    assert isinstance(make_exporter("text"), TextSummaryExporter)


def test_make_exporter_unknown_name():
    with pytest.raises(ConfigurationError, match="unknown exporter"):
        make_exporter("nope")


def test_register_and_unregister_custom_exporter():
    class Custom(Exporter):
        def __init__(self):
            self.seen = []

        def emit(self, event):
            self.seen.append(event)

    try:
        register_exporter("custom-test", Custom)
        assert "custom-test" in available_exporters()
        exporter = make_exporter("custom-test")
        exporter.emit({"type": "counter", "name": "x"})
        assert exporter.seen
        # Double registration needs overwrite=True.
        with pytest.raises(ConfigurationError, match="already registered"):
            register_exporter("custom-test", Custom)
        register_exporter("custom-test", Custom, overwrite=True)
    finally:
        unregister_exporter("custom-test")
    assert "custom-test" not in available_exporters()


@pytest.mark.parametrize("builtin", BUILTIN_EXPORTERS)
def test_builtins_are_protected(builtin):
    with pytest.raises(ConfigurationError, match="built-in"):
        register_exporter(builtin, NullExporter, overwrite=True)
    with pytest.raises(ConfigurationError, match="built-in"):
        unregister_exporter(builtin)


def test_register_validates_name_and_factory():
    with pytest.raises(ConfigurationError):
        register_exporter("", NullExporter)
    with pytest.raises(ConfigurationError):
        register_exporter("x-test", "not-callable")


def test_make_exporter_rejects_non_exporter_factories():
    try:
        register_exporter("broken-test", lambda: object())
        with pytest.raises(ConfigurationError, match="not an Exporter"):
            make_exporter("broken-test")
    finally:
        unregister_exporter("broken-test")


def test_in_memory_exporter_buffers_and_clears():
    exporter = InMemoryExporter()
    exporter.emit({"type": "counter", "name": "a"})
    assert len(exporter.events) == 1
    exporter.clear()
    assert exporter.events == []


def test_jsonl_exporter_writes_one_object_per_line(tmp_path):
    path = tmp_path / "events.jsonl"
    exporter = JsonlExporter(path)
    assert not path.exists()  # opening is lazy
    exporter.emit({"type": "counter", "name": "a", "value": 1.0})
    exporter.emit({"type": "gauge", "name": "b", "value": 2.5})
    exporter.close()
    lines = path.read_text().splitlines()
    assert [json.loads(line)["name"] for line in lines] == ["a", "b"]
    exporter.close()  # closing twice is tolerated


def test_jsonl_exporter_reads_path_from_environment(tmp_path, monkeypatch):
    target = tmp_path / "env-events.jsonl"
    monkeypatch.setenv("REPRO_OBS_PATH", str(target))
    exporter = JsonlExporter()
    exporter.emit({"type": "counter", "name": "a", "value": 1.0})
    exporter.close()
    assert target.exists()


def test_jsonl_exporter_batches_until_flush_threshold(tmp_path):
    path = tmp_path / "batched.jsonl"
    exporter = JsonlExporter(path, flush_every=3)
    exporter.emit({"type": "counter", "name": "a", "value": 1.0})
    exporter.emit({"type": "counter", "name": "b", "value": 1.0})
    assert not path.exists()  # below the batch threshold, nothing written
    exporter.emit({"type": "counter", "name": "c", "value": 1.0})
    assert len(path.read_text().splitlines()) == 3  # threshold writes
    exporter.emit({"type": "counter", "name": "d", "value": 1.0})
    assert len(path.read_text().splitlines()) == 3  # partial batch pends
    exporter.flush()
    assert len(path.read_text().splitlines()) == 4  # flush persists the tail
    exporter.close()


def test_jsonl_exporter_emit_batch_is_one_write(tmp_path):
    path = tmp_path / "batch.jsonl"
    exporter = JsonlExporter(path)
    exporter.emit_batch(
        [{"type": "counter", "name": f"n{i}", "value": 1.0} for i in range(5)]
    )
    lines = path.read_text().splitlines()
    assert [json.loads(line)["name"] for line in lines] == [
        "n0", "n1", "n2", "n3", "n4"
    ]
    exporter.close()


def test_jsonl_exporter_rejects_bad_flush_every(tmp_path):
    with pytest.raises(ConfigurationError, match="flush_every"):
        JsonlExporter(tmp_path / "x.jsonl", flush_every=0)


def test_ring_exporter_batches_into_sink():
    sink = InMemoryExporter()
    ring = RingBufferExporter(sink=sink, flush_every=3, background=False)
    ring.emit({"type": "counter", "name": "a"})
    ring.emit({"type": "counter", "name": "b"})
    assert sink.events == []  # below the batch threshold
    ring.emit({"type": "counter", "name": "c"})
    assert [e["name"] for e in sink.events] == ["a", "b", "c"]
    ring.emit({"type": "counter", "name": "d"})
    ring.flush()
    assert [e["name"] for e in sink.events] == ["a", "b", "c", "d"]
    assert ring.events_dropped == 0


def test_ring_exporter_background_writer_streams_in_order():
    sink = InMemoryExporter()
    ring = RingBufferExporter(sink=sink, flush_every=4)
    names = [f"n{i}" for i in range(11)]
    for name in names:
        ring.emit({"type": "counter", "name": name})
    ring.flush()  # waits for the writer to drain, then flushes the tail
    assert [e["name"] for e in sink.events] == names  # strict FIFO order
    assert ring.events_dropped == 0
    ring.close()
    ring.close()  # second close is tolerated


def test_ring_exporter_flight_recorder_drops_oldest():
    ring = RingBufferExporter(capacity=3)
    for index in range(5):
        ring.emit({"type": "counter", "name": f"n{index}"})
    assert ring.events_dropped == 2
    drained = ring.drain()
    # The drop report leads, then the newest `capacity` events.
    assert drained[0]["name"] == EVENTS_DROPPED_COUNTER
    assert drained[0]["value"] == 2.0
    assert [e["name"] for e in drained[1:]] == ["n2", "n3", "n4"]
    # A second drain reports nothing new.
    assert ring.drain() == []


def test_ring_exporter_close_flushes_and_closes_sink(tmp_path):
    path = tmp_path / "ring.jsonl"
    ring = RingBufferExporter(sink=JsonlExporter(path), flush_every=100)
    ring.emit({"type": "counter", "name": "tail", "value": 1.0})
    assert not path.exists()
    ring.close()
    assert json.loads(path.read_text().splitlines()[0])["name"] == "tail"


def test_ring_exporter_validates_parameters():
    with pytest.raises(ConfigurationError, match="capacity"):
        RingBufferExporter(capacity=0)
    with pytest.raises(ConfigurationError, match="flush_every"):
        RingBufferExporter(flush_every=0)


def test_text_summary_exporter_renders_on_close():
    import io

    stream = io.StringIO()
    exporter = TextSummaryExporter(stream=stream)
    exporter.emit({"type": "counter", "name": "abft.detections", "value": 1.0})
    exporter.close()
    text = stream.getvalue()
    assert "abft.detections" in text and "== counters ==" in text
    exporter.close()  # buffer drained; second close writes nothing more
    assert stream.getvalue() == text


def test_text_summary_exporter_empty_close_is_silent():
    import io

    stream = io.StringIO()
    TextSummaryExporter(stream=stream).close()
    assert stream.getvalue() == ""
