"""Task graphs (DAGs of kernels) for the machine model.

The fault-tolerant SpMV of the paper's Figure 1 is expressed as a task
graph: the SpMV kernel and the ``Cb`` checksum kernel run in parallel
streams, the norm and result-checksum kernels follow, then syndrome,
comparison and (on error) partial recomputation.  The scheduler in
:mod:`repro.machine.scheduler` turns such a graph into a makespan.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.errors import SchedulerError
from repro.machine.task import Task


class TaskGraph:
    """A directed acyclic graph of :class:`Task` objects.

    Tasks are added with :meth:`add`; dependencies must reference tasks
    already in the graph, which makes cycles impossible by construction
    and keeps insertion order a valid topological order.
    """

    def __init__(self) -> None:
        self._tasks: Dict[str, Task] = {}

    def add(
        self,
        name: str,
        work: float = 0.0,
        span: float = 0.0,
        deps: Iterable[str] = (),
    ) -> Task:
        """Create a task and insert it into the graph.

        Args:
            name: unique task name.
            work: FLOPs of the kernel.
            span: sequential dependence steps of the kernel.
            deps: names of already-inserted prerequisite tasks.

        Returns:
            The inserted :class:`Task`.

        Raises:
            SchedulerError: on duplicate names or unknown dependencies.
        """
        if name in self._tasks:
            raise SchedulerError(f"duplicate task name {name!r}")
        deps = tuple(deps)
        for dep in deps:
            if dep not in self._tasks:
                raise SchedulerError(
                    f"task {name!r} depends on unknown task {dep!r} "
                    "(dependencies must be inserted first)"
                )
        task = Task(name=name, work=work, span=span, deps=deps)
        self._tasks[name] = task
        return task

    def add_task(self, task: Task) -> Task:
        """Insert an existing :class:`Task` (same rules as :meth:`add`)."""
        if task.name in self._tasks:
            raise SchedulerError(f"duplicate task name {task.name!r}")
        for dep in task.deps:
            if dep not in self._tasks:
                raise SchedulerError(
                    f"task {task.name!r} depends on unknown task {dep!r}"
                )
        self._tasks[task.name] = task
        return task

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __getitem__(self, name: str) -> Task:
        return self._tasks[name]

    def tasks(self) -> List[Task]:
        """Tasks in insertion (= topological) order."""
        return list(self._tasks.values())

    def total_work(self) -> float:
        """Sum of task work — the ``W`` of the work-span model."""
        return sum(task.work for task in self._tasks.values())

    def successors(self) -> Dict[str, List[str]]:
        """Map from task name to the names of tasks depending on it."""
        out: Dict[str, List[str]] = {name: [] for name in self._tasks}
        for task in self._tasks.values():
            for dep in task.deps:
                out[dep].append(task.name)
        return out

    def critical_path(
        self, throughput: float, launch: float, sync: float
    ) -> Tuple[float, List[str]]:
        """Longest chain of solo task durations — the ``D`` of work-span.

        Returns:
            ``(length_seconds, path)`` where ``path`` lists task names from
            source to sink along the critical chain.
        """
        finish: Dict[str, float] = {}
        predecessor: Dict[str, str | None] = {}
        for task in self._tasks.values():  # insertion order is topological
            best_dep, best_time = None, 0.0
            for dep in task.deps:
                if finish[dep] > best_time:
                    best_dep, best_time = dep, finish[dep]
            finish[task.name] = best_time + task.solo_duration(throughput, launch, sync)
            predecessor[task.name] = best_dep
        if not finish:
            return 0.0, []
        sink = max(finish, key=finish.__getitem__)
        path: List[str] = []
        cursor: str | None = sink
        while cursor is not None:
            path.append(cursor)
            cursor = predecessor[cursor]
        path.reverse()
        return finish[sink], path
