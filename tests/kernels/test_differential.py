"""Differential tests: every registered kernel pair over the full corpus.

Contract (see ``repro/kernels/base.py``): structural outputs — sparsity
patterns, flag masks, accounting, tamper-call traces — must match at bit
level; floating-point reductions must agree within the paper's own
per-block rounding bound (evaluated at the operand norm), which is the
same criterion the detector itself uses to separate noise from errors.
Recomputation kernels reduce in the same per-row order in every set, so
corrected values are asserted bit-identical.
"""

import itertools

import numpy as np
import pytest

from repro.core import ChecksumMatrix, make_weights
from repro.core.blocking import BlockPartition
from repro.core.bounds import SparseBlockBound
from repro.core.corrector import correct_blocks
from repro.errors import ConfigurationError
from repro.kernels import available_kernels, get_kernels
from tests.kernels.corpus import corpus, corpus_ids

CASES = corpus()
PAIRS = list(itertools.combinations(available_kernels(), 2))
WEIGHT_KINDS = ("ones", "linear", "random")


def _case_params():
    return pytest.mark.parametrize(
        "case", CASES, ids=corpus_ids(), scope="module"
    )


def _pair_params():
    return pytest.mark.parametrize("pair", PAIRS, ids=["-vs-".join(p) for p in PAIRS])


def _rounding_tolerance(checksum: ChecksumMatrix, reference: np.ndarray) -> np.ndarray:
    """Per-block tolerance: the paper's bound at beta = ||reference||."""
    beta = float(np.linalg.norm(reference)) if reference.size else 0.0
    bound = SparseBlockBound.from_checksum(checksum)
    # A zero bound (empty block) still tolerates a few ulps of noise.
    return bound.thresholds(beta) + 1e-14 * (1.0 + np.abs(checksum.result_checksums(reference)))


@_case_params()
@_pair_params()
@pytest.mark.parametrize("weight_kind", WEIGHT_KINDS)
def test_encode_structure_and_values(case, pair, weight_kind):
    _, matrix, block_size = case
    built = [
        ChecksumMatrix.build(matrix, block_size, weight_kind, kernel=name)
        for name in pair
    ]
    a, b = (c.matrix for c in built)
    np.testing.assert_array_equal(a.indptr, b.indptr)
    np.testing.assert_array_equal(a.indices, b.indices)
    np.testing.assert_allclose(a.data, b.data, rtol=1e-12, atol=1e-12)
    np.testing.assert_array_equal(built[0].nonempty_columns, built[1].nonempty_columns)
    np.testing.assert_allclose(
        built[0].checksum_norms, built[1].checksum_norms, rtol=1e-12, atol=1e-12
    )


@_case_params()
@_pair_params()
def test_linear_weights_bit_identical(case, pair):
    _, matrix, block_size = case
    partition = BlockPartition(matrix.n_rows, block_size)
    a, b = (get_kernels(name).linear_weights(partition) for name in pair)
    np.testing.assert_array_equal(a, b)


@_case_params()
@_pair_params()
def test_result_checksums_within_rounding_bound(case, pair):
    _, matrix, block_size = case
    rng = np.random.default_rng(7)
    r = rng.standard_normal(matrix.n_rows)
    checksum = ChecksumMatrix.build(matrix, block_size)
    tolerance = _rounding_tolerance(checksum, r)
    a, b = (checksum.result_checksums(r, kernel=name) for name in pair)
    assert a.shape == b.shape == (checksum.n_blocks,)
    assert np.all(np.abs(a - b) <= tolerance)


@_case_params()
@_pair_params()
def test_result_checksums_for_blocks_matches_full(case, pair):
    _, matrix, block_size = case
    rng = np.random.default_rng(8)
    r = rng.standard_normal(matrix.n_rows)
    checksum = ChecksumMatrix.build(matrix, block_size)
    n_blocks = checksum.n_blocks
    subsets = [
        np.arange(n_blocks, dtype=np.int64),
        np.arange(n_blocks, dtype=np.int64)[::2],
        np.arange(n_blocks, dtype=np.int64)[::-1],
        np.empty(0, dtype=np.int64),
    ]
    if n_blocks:
        subsets.append(np.array([0, n_blocks - 1, 0], dtype=np.int64))  # duplicates
    tolerance = _rounding_tolerance(checksum, r)
    for blocks in subsets:
        a, b = (
            checksum.result_checksums_for_blocks(r, blocks, kernel=name)
            for name in pair
        )
        assert a.shape == b.shape == (blocks.size,)
        if blocks.size:
            assert np.all(np.abs(a - b) <= tolerance[blocks])


@_case_params()
@_pair_params()
def test_for_blocks_rejects_bad_ids_everywhere(case, pair):
    _, matrix, block_size = case
    checksum = ChecksumMatrix.build(matrix, block_size)
    r = np.zeros(matrix.n_rows)
    for name in pair:
        for bad in ([-1], [checksum.n_blocks], [0, 10_000]):
            with pytest.raises(ConfigurationError):
                checksum.result_checksums_for_blocks(r, np.array(bad), kernel=name)


@_pair_params()
@pytest.mark.parametrize(
    "t1,t2,thresholds",
    [
        ([0.0, 1.0, -3.0], [0.0, 1.0, 3.0], [0.5, 0.5, 0.5]),
        ([1.0, np.nan, np.inf], [1.0, 0.0, 0.0], [0.5, 0.5, 0.5]),
        ([1.0, 2.0], [1.0, 2.0], [np.nan, np.inf]),
        ([np.inf, -np.inf], [np.inf, np.inf], [1.0, 1.0]),
        ([1.0 + 1e-15, 5.0], [1.0, 5.0], [1e-15, 0.0]),
        ([], [], []),
    ],
)
def test_compare_syndromes_flags_bit_identical(pair, t1, t2, thresholds):
    t1, t2, thresholds = (np.asarray(x, dtype=np.float64) for x in (t1, t2, thresholds))
    results = [get_kernels(name).compare_syndromes(t1, t2, thresholds) for name in pair]
    (syn_a, exc_a), (syn_b, exc_b) = results
    np.testing.assert_array_equal(exc_a, exc_b)
    np.testing.assert_array_equal(np.isnan(syn_a), np.isnan(syn_b))
    np.testing.assert_array_equal(syn_a[~np.isnan(syn_a)], syn_b[~np.isnan(syn_b)])


class _TamperTrace:
    """Records the hook-call sequence so traces can be compared exactly."""

    def __init__(self):
        self.calls = []

    def __call__(self, stage, data, work):
        self.calls.append((stage, np.array(data, copy=True), float(work)))

    def assert_equal(self, other: "_TamperTrace"):
        assert len(self.calls) == len(other.calls)
        for (stage_a, data_a, work_a), (stage_b, data_b, work_b) in zip(
            self.calls, other.calls
        ):
            assert stage_a == stage_b
            assert work_a == work_b
            np.testing.assert_array_equal(data_a, data_b)


@_case_params()
@_pair_params()
def test_correct_blocks_bit_identical(case, pair):
    _, matrix, block_size = case
    partition = BlockPartition(matrix.n_rows, block_size)
    if partition.n_blocks == 0:
        pytest.skip("no blocks to correct")
    rng = np.random.default_rng(9)
    b = rng.standard_normal(matrix.n_cols)
    clean = matrix.matvec(b)
    blocks = np.arange(partition.n_blocks, dtype=np.int64)[::2]
    outputs = []
    traces = []
    for name in pair:
        r = clean + 1.0  # corrupt everything; selected blocks get repaired
        trace = _TamperTrace()
        outcome = correct_blocks(
            matrix, partition, b, r, blocks, tamper=trace, kernel=name
        )
        outputs.append((r, outcome))
        traces.append(trace)
    (r_a, out_a), (r_b, out_b) = outputs
    np.testing.assert_array_equal(r_a, r_b)
    assert out_a.rows_recomputed == out_b.rows_recomputed
    assert out_a.nnz_recomputed == out_b.nnz_recomputed
    traces[0].assert_equal(traces[1])
    # Repaired blocks are bit-identical to the reference SpMV.
    for block in blocks:
        start, stop = partition.bounds(int(block))
        np.testing.assert_array_equal(r_a[start:stop], clean[start:stop])


@_case_params()
@_pair_params()
def test_row_checksums_bit_identical(case, pair):
    _, matrix, block_size = case
    checksum = ChecksumMatrix.build(matrix, block_size)
    rng = np.random.default_rng(10)
    b = rng.standard_normal(matrix.n_cols)
    rows = np.arange(checksum.n_blocks, dtype=np.int64)
    results = [
        get_kernels(name).row_checksums(checksum.matrix, rows, b) for name in pair
    ]
    (vals_a, nnz_a), (vals_b, nnz_b) = results
    np.testing.assert_array_equal(vals_a, vals_b)
    assert nnz_a == nnz_b == checksum.nnz


@_case_params()
@_pair_params()
@pytest.mark.parametrize("weighted", [False, True], ids=["ones", "weighted"])
def test_multi_rhs_checksums_within_rounding_bound(case, pair, weighted):
    _, matrix, block_size = case
    partition = BlockPartition(matrix.n_rows, block_size)
    rng = np.random.default_rng(11)
    r = rng.standard_normal((matrix.n_rows, 3))
    weights = make_weights("random", partition) if weighted else None
    full = [
        get_kernels(name).result_checksums_multi(r, partition, weights)
        for name in pair
    ]
    assert full[0].shape == full[1].shape == (partition.n_blocks, 3)
    np.testing.assert_allclose(full[0], full[1], rtol=1e-11, atol=1e-11)
    blocks = np.arange(partition.n_blocks, dtype=np.int64)[::2]
    sub = [
        get_kernels(name).result_checksums_multi_for_blocks(
            r, partition, blocks, weights
        )
        for name in pair
    ]
    assert sub[0].shape == sub[1].shape == (blocks.size, 3)
    np.testing.assert_allclose(sub[0], sub[1], rtol=1e-11, atol=1e-11)
    # The subset path agrees with the full pass rows it re-evaluates.
    np.testing.assert_allclose(sub[0], full[0][blocks], rtol=1e-11, atol=1e-11)


@_case_params()
@_pair_params()
def test_correct_cells_bit_identical(case, pair):
    _, matrix, block_size = case
    partition = BlockPartition(matrix.n_rows, block_size)
    if partition.n_blocks == 0:
        pytest.skip("no blocks to correct")
    rng = np.random.default_rng(12)
    k = 3
    b = rng.standard_normal((matrix.n_cols, k))
    clean = matrix.matmat(b)
    cells = np.array(
        [[block, block % k] for block in range(partition.n_blocks)], dtype=np.int64
    )
    outputs = []
    traces = []
    for name in pair:
        r = clean + 1.0
        trace = _TamperTrace()
        rows, nnz = get_kernels(name).correct_cells(
            matrix, partition, b, r, cells, trace
        )
        outputs.append((r, rows, nnz))
        traces.append(trace)
    (r_a, rows_a, nnz_a), (r_b, rows_b, nnz_b) = outputs
    np.testing.assert_array_equal(r_a, r_b)
    assert (rows_a, nnz_a) == (rows_b, nnz_b)
    traces[0].assert_equal(traces[1])
    for block, col in cells:
        start, stop = partition.bounds(int(block))
        np.testing.assert_array_equal(
            r_a[start:stop, col], clean[start:stop, col]
        )
