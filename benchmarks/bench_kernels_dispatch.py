"""Naive-vs-vectorized kernel dispatch benchmark.

Times the registered kernel sets head-to-head on the hot paths of a
protected multiply — full detection, selected-block re-verification and
block correction — over a 10k-row random SPD matrix, and records the
speedup table to ``results/bench_kernels_dispatch.txt``.  The vectorized
set must beat the naive reference by at least 3x on the detection path
(the batched kernels exist to make per-block protection affordable, so a
regression here defeats the subsystem's purpose).

A second table sweeps the format axis of the registry — the ``csr``,
``bsr`` and ``ell`` vectorized sets each running matvec, correction and
the ``t1``-refresh on their own storage — so the dispatch cost of every
registered ``(format, impl)`` pair is on record.  No floor: this matrix
is unstructured, the regime where CSR is *expected* to win (the format
floors live in ``bench_formats``).
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import bench_env, write_json, write_result
from repro.core import AbftConfig, BlockAbftDetector, ChecksumMatrix
from repro.core.blocking import BlockPartition
from repro.core.corrector import correct_blocks
from repro.kernels import get_kernels
from repro.sparse import BUILTIN_FORMATS, build_format, random_spd

N_ROWS = 10_000
NNZ = 120_000
BLOCK_SIZE = 8
MIN_DETECTION_SPEEDUP = 3.0
REPEATS = 5


@pytest.fixture(scope="module")
def matrix():
    return random_spd(N_ROWS, NNZ, seed=17)


@pytest.fixture(scope="module")
def operand(matrix):
    return np.random.default_rng(18).standard_normal(matrix.n_cols)


@pytest.fixture(scope="module")
def detectors(matrix):
    return {
        name: BlockAbftDetector(
            matrix, AbftConfig(block_size=BLOCK_SIZE, kernel=name)
        )
        for name in ("naive", "vectorized")
    }


def _best_of(fn, repeats=REPEATS):
    """Best-of-N wall time — robust to scheduler noise for short kernels."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _timings(matrix, operand, detectors):
    r = matrix.matvec(operand)
    blocks = np.arange(detectors["naive"].n_blocks, dtype=np.int64)[::4]
    rows = {}
    for name, detector in detectors.items():
        partition = detector.partition
        scratch = r.copy()
        rows[name] = {
            "encode": _best_of(
                lambda n=name: ChecksumMatrix.build(matrix, BLOCK_SIZE, kernel=n),
                repeats=3,
            ),
            "detect": _best_of(lambda d=detector: d.detect(operand, r)),
            "reverify": _best_of(
                lambda d=detector: d.checksum.result_checksums_for_blocks(r, blocks)
            ),
            "correct": _best_of(
                lambda d=detector, s=scratch: correct_blocks(
                    matrix, d.partition, operand, s, blocks, kernel=d.kernels
                )
            ),
        }
    return rows


def _format_timings(matrix, operand):
    """The format axis: each storage format's vectorized kernels on
    their own storage (matvec, block correction, t1 refresh)."""
    partition = BlockPartition(matrix.n_rows, BLOCK_SIZE)
    blocks = np.arange(partition.n_blocks, dtype=np.int64)[::4]
    rows_refresh = np.arange(matrix.n_rows, dtype=np.int64)[::16]
    legs = {}
    for fmt in BUILTIN_FORMATS:
        storage = build_format(matrix, fmt)
        kernels = get_kernels("vectorized", fmt)
        scratch = storage.matvec(operand)
        legs[fmt] = {
            "matvec": _best_of(lambda s=storage: s.matvec(operand)),
            "correct": _best_of(
                lambda k=kernels, s=storage, r=scratch: k.correct_blocks(
                    s, partition, operand, r, blocks
                )
            ),
            "row_checksums": _best_of(
                lambda k=kernels, s=storage: k.row_checksums(
                    s, rows_refresh, operand
                )
            ),
        }
    return legs


def test_vectorized_beats_naive(matrix, operand, detectors, benchmark):
    timings = _timings(matrix, operand, detectors)
    format_legs = _format_timings(matrix, operand)
    stages = ("encode", "detect", "reverify", "correct")
    speedups = {
        stage: timings["naive"][stage] / timings["vectorized"][stage]
        for stage in stages
    }

    lines = [
        "Kernel dispatch: naive vs vectorized "
        f"(random SPD, n={N_ROWS}, nnz={NNZ}, block size {BLOCK_SIZE})",
        "",
        f"{'stage':<10} {'naive [ms]':>12} {'vectorized [ms]':>16} {'speedup':>9}",
    ]
    for stage in stages:
        lines.append(
            f"{stage:<10} {1e3 * timings['naive'][stage]:>12.3f} "
            f"{1e3 * timings['vectorized'][stage]:>16.3f} "
            f"{speedups[stage]:>8.1f}x"
        )
    lines += [
        "",
        "format axis (vectorized kernels on their own storage; "
        "unstructured matrix, CSR expected to win):",
        f"{'format':<10} {'matvec [ms]':>12} {'correct [ms]':>13} "
        f"{'t1 refresh [ms]':>16}",
    ]
    for fmt, leg in format_legs.items():
        lines.append(
            f"{fmt:<10} {1e3 * leg['matvec']:>12.3f} "
            f"{1e3 * leg['correct']:>13.3f} "
            f"{1e3 * leg['row_checksums']:>16.3f}"
        )
    write_result("bench_kernels_dispatch", "\n".join(lines))
    write_json(
        "kernels_dispatch",
        {
            "benchmark": "kernels_dispatch",
            "config": {
                "n_rows": N_ROWS,
                "nnz": NNZ,
                "block_size": BLOCK_SIZE,
                "repeats": REPEATS,
            },
            "timings_ms": {
                name: {stage: 1e3 * row[stage] for stage in stages}
                for name, row in timings.items()
            },
            "speedups": speedups,
            "format_timings_ms": {
                fmt: {stage: 1e3 * v for stage, v in leg.items()}
                for fmt, leg in format_legs.items()
            },
            "floors": {
                "detect": MIN_DETECTION_SPEEDUP,
                "reverify": MIN_DETECTION_SPEEDUP,
            },
            "env": bench_env(),
        },
    )

    # The acceptance floor: batched detection must be >= 3x the loops.
    assert speedups["detect"] >= MIN_DETECTION_SPEEDUP
    assert speedups["reverify"] >= MIN_DETECTION_SPEEDUP

    r = matrix.matvec(operand)
    report = benchmark.pedantic(
        lambda: detectors["vectorized"].detect(operand, r), rounds=3, iterations=1
    )
    assert report.clean
