"""Row-block partitioning of a matrix (Section III-B).

The input matrix is decomposed into row blocks ``A_k`` of at most
``block_size`` rows; blocks both carry the checksums and delimit error
locations — a flagged block is exactly the row range that gets recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BlockPartition:
    """Uniform partition of ``n_rows`` rows into blocks of ``block_size``.

    The last block may be smaller when ``block_size`` does not divide
    ``n_rows``.
    """

    n_rows: int
    block_size: int

    def __post_init__(self) -> None:
        if self.n_rows < 0:
            raise ConfigurationError(f"n_rows must be >= 0, got {self.n_rows}")
        if self.block_size < 1:
            raise ConfigurationError(f"block_size must be >= 1, got {self.block_size}")

    @property
    def n_blocks(self) -> int:
        """Number of blocks (zero for an empty matrix)."""
        return -(-self.n_rows // self.block_size) if self.n_rows else 0

    def bounds(self, block: int) -> Tuple[int, int]:
        """Row range ``[start, stop)`` of block ``block``."""
        if not 0 <= block < self.n_blocks:
            raise ConfigurationError(
                f"block {block} out of range for {self.n_blocks} blocks"
            )
        start = block * self.block_size
        return start, min(start + self.block_size, self.n_rows)

    def length(self, block: int) -> int:
        """Number of rows in block ``block`` (== block_size except maybe last)."""
        start, stop = self.bounds(block)
        return stop - start

    def block_of_row(self, row: int) -> int:
        """Block index containing ``row``."""
        if not 0 <= row < self.n_rows:
            raise ConfigurationError(f"row {row} out of range for {self.n_rows} rows")
        return row // self.block_size

    def block_ids_of_rows(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`block_of_row` (no bounds check)."""
        return np.asarray(rows, dtype=np.int64) // self.block_size

    def __iter__(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(block_index, start_row, stop_row)`` for every block."""
        for block in range(self.n_blocks):
            start, stop = self.bounds(block)
            yield block, start, stop

    def block_lengths(self) -> np.ndarray:
        """Lengths of all blocks as an int64 array (cached; read-only)."""
        cached: np.ndarray | None = getattr(self, "_block_lengths", None)
        if cached is None:
            if self.n_blocks == 0:
                cached = np.empty(0, dtype=np.int64)
            else:
                cached = np.full(self.n_blocks, self.block_size, dtype=np.int64)
                cached[-1] = self.n_rows - (self.n_blocks - 1) * self.block_size
            cached.flags.writeable = False
            # Frozen dataclass: the cache is a derived value, not a field,
            # so it never participates in eq/hash/repr.
            object.__setattr__(self, "_block_lengths", cached)
        return cached

    def block_starts(self) -> np.ndarray:
        """Start rows of all blocks (length ``n_blocks + 1``, ends with
        ``n_rows``; cached and read-only — partitions are immutable)."""
        cached: np.ndarray | None = getattr(self, "_block_starts", None)
        if cached is None:
            cached = np.arange(self.n_blocks + 1, dtype=np.int64) * self.block_size
            cached[-1] = self.n_rows
            cached.flags.writeable = False
            object.__setattr__(self, "_block_starts", cached)
        return cached
