"""Quickstart: protect a sparse matrix-vector multiplication with block ABFT.

Runs the proposed fault-tolerant SpMV on one of the paper's benchmark
matrices, injects a transient error into the result, and shows that the
scheme detects it, localizes it to a 32-row block, and repairs it by
recomputing only that block.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FaultTolerantSpMV, suite_matrix
from repro.faults import FaultInjector
from repro.machine import ExecutionMeter


def main() -> None:
    # One of the 25 Table I matrices (synthetic analogue, same N and NNZ).
    matrix = suite_matrix("bcsstk13")
    print(f"matrix: bcsstk13 analogue, shape={matrix.shape}, nnz={matrix.nnz}")

    ft = FaultTolerantSpMV(matrix, block_size=32)
    checksum = ft.detector.checksum
    print(
        f"checksum matrix C: {checksum.matrix.shape[0]} blocks, "
        f"nnz(C)/nnz(A) = {checksum.sparsity_gain:.2f}"
    )

    rng = np.random.default_rng(7)
    b = rng.standard_normal(matrix.n_cols)
    reference = matrix.matvec(b)

    # --- fault-free multiply -------------------------------------------
    clean = ft.multiply(b)
    assert clean.clean and np.array_equal(clean.value, reference)
    meter = ExecutionMeter()
    ft.plain_multiply(b, meter=meter)
    print(
        f"fault-free: no blocks flagged; detection overhead "
        f"{clean.seconds / meter.seconds - 1:.1%} (simulated K80 model)"
    )

    # --- multiply with an injected transient error ----------------------
    injector = FaultInjector.seeded(42)
    state = {"hit": None}

    def inject_once(stage: str, data: np.ndarray, work: float) -> None:
        if stage == "result" and state["hit"] is None:
            record = injector.corrupt_random_element(data, sigma=1e-10)
            state["hit"] = record
            print(
                f"injected burst at result[{record.index}]: "
                f"{record.original:.6g} -> {record.corrupted:.6g} "
                f"(bits {record.burst.position}..{record.burst.position + record.burst.width - 1})"
            )

    protected = ft.multiply(b, tamper=inject_once)
    hit_block = state["hit"].index // 32
    print(f"detected blocks: {protected.detected[0]} (error was in block {hit_block})")
    print(f"corrected blocks: {protected.corrected_blocks} in {protected.rounds} round(s)")
    assert np.array_equal(protected.value, reference), "correction must be exact"
    print("result verified: bit-identical to the fault-free product")


if __name__ == "__main__":
    main()
