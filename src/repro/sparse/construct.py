"""Sparse-matrix constructors and binary operations.

Completes the substrate with the small algebra the solvers and examples
want: identity/diagonal constructors and entrywise addition (used e.g. to
shift a matrix, build preconditioner splittings, or assemble ``A + sigma I``
regularized systems).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeMismatchError
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix


def identity(n: int) -> CsrMatrix:
    """The ``n x n`` identity matrix."""
    if n < 0:
        raise ConfigurationError(f"dimension must be >= 0, got {n}")
    idx = np.arange(n, dtype=np.int64)
    return CsrMatrix((n, n), np.arange(n + 1, dtype=np.int64), idx, np.ones(n))


def diags(values: np.ndarray) -> CsrMatrix:
    """A diagonal matrix with the given diagonal values.

    Exact zeros on the diagonal are stored structurally (so the matrix
    keeps shape ``(n, n)`` with one entry per row).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ShapeMismatchError(f"expected a 1-D diagonal, got ndim={values.ndim}")
    n = values.size
    idx = np.arange(n, dtype=np.int64)
    return CsrMatrix((n, n), np.arange(n + 1, dtype=np.int64), idx, values.copy())


def add(a: CsrMatrix, b: CsrMatrix) -> CsrMatrix:
    """Entrywise sum ``A + B`` (duplicate positions merge; exact-zero sums
    are kept structurally, matching COO deduplication semantics)."""
    if a.shape != b.shape:
        raise ShapeMismatchError(f"shape mismatch: {a.shape} vs {b.shape}")
    return CooMatrix(
        a.shape,
        np.concatenate([a.entry_rows(), b.entry_rows()]),
        np.concatenate([a.indices, b.indices]),
        np.concatenate([a.data, b.data]),
    ).to_csr()


def subtract(a: CsrMatrix, b: CsrMatrix) -> CsrMatrix:
    """Entrywise difference ``A - B``."""
    return add(a, b.scaled(-1.0))


def shift(a: CsrMatrix, sigma: float) -> CsrMatrix:
    """``A + sigma * I`` (square matrices only)."""
    if a.shape[0] != a.shape[1]:
        raise ShapeMismatchError(f"shift needs a square matrix, got {a.shape}")
    return add(a, identity(a.shape[0]).scaled(sigma))
