"""Unit tests for the dense-block (SpMM) CSR kernels."""

import numpy as np
import pytest

from repro.errors import ShapeMismatchError
from repro.sparse import CooMatrix, random_spd


@pytest.fixture
def matrix():
    return random_spd(60, 500, seed=131)


def test_matmat_matches_dense(matrix):
    b = np.random.default_rng(0).standard_normal((60, 7))
    np.testing.assert_allclose(matrix.matmat(b), matrix.to_dense() @ b, rtol=1e-12)


def test_matmat_single_column_matches_matvec(matrix):
    b = np.random.default_rng(1).standard_normal(60)
    np.testing.assert_array_equal(matrix.matmat(b[:, None])[:, 0], matrix.matvec(b))


def test_matmat_empty_rows():
    csr = CooMatrix.from_entries((4, 4), [(1, 1, 2.0)]).to_csr()
    b = np.ones((4, 3))
    out = csr.matmat(b)
    np.testing.assert_array_equal(out[0], np.zeros(3))
    np.testing.assert_array_equal(out[1], np.full(3, 2.0))


def test_matmat_zero_matrix():
    csr = CooMatrix.from_entries((3, 3), []).to_csr()
    np.testing.assert_array_equal(csr.matmat(np.ones((3, 2))), np.zeros((3, 2)))


def test_matmat_rows_equals_slice(matrix):
    b = np.random.default_rng(2).standard_normal((60, 4))
    full = matrix.matmat(b)
    for start, stop in [(0, 10), (25, 40), (59, 60), (5, 5)]:
        np.testing.assert_allclose(
            matrix.matmat_rows(start, stop, b), full[start:stop], rtol=1e-12
        )


def test_matmat_shape_validation(matrix):
    with pytest.raises(ShapeMismatchError):
        matrix.matmat(np.ones(60))  # 1-D
    with pytest.raises(ShapeMismatchError):
        matrix.matmat(np.ones((59, 2)))
    with pytest.raises(ShapeMismatchError):
        matrix.matmat_rows(0, 10, np.ones((59, 2)))
    with pytest.raises(ShapeMismatchError):
        matrix.matmat_rows(10, 5, np.ones((60, 2)))


def test_matmat_wide_operand_chunking_is_invisible(matrix, monkeypatch):
    """A wide dense block forces many chunks; every chunk boundary must be
    numerically invisible (each column reduces independently)."""
    b = np.random.default_rng(3).standard_normal((60, 64))
    unchunked = matrix.matmat(b)
    import repro.sparse.csr as csr_module

    # nnz=500, so 1000 elements => chunk width 2 => 32 chunk boundaries.
    monkeypatch.setattr(csr_module, "MATMAT_CHUNK_ELEMENTS", 1000)
    np.testing.assert_array_equal(matrix.matmat(b), unchunked)
    np.testing.assert_array_equal(
        matrix.matmat_rows(10, 50, b), unchunked[10:50]
    )


def test_matmat_chunk_floor_of_one_column(matrix, monkeypatch):
    """nnz larger than the element budget degrades to one column per pass."""
    import repro.sparse.csr as csr_module

    monkeypatch.setattr(csr_module, "MATMAT_CHUNK_ELEMENTS", 1)
    b = np.random.default_rng(4).standard_normal((60, 5))
    monkeypatch.undo()
    expected = matrix.matmat(b)
    monkeypatch.setattr(csr_module, "MATMAT_CHUNK_ELEMENTS", 1)
    np.testing.assert_array_equal(matrix.matmat(b), expected)
