"""Shard-parallel kernel set executing on a shared thread pool.

NumPy releases the GIL inside the ufunc/``reduceat`` inner loops, so
row-sharded segment reductions genuinely overlap on multi-core hosts.
:class:`ParallelKernels` subclasses the vectorized set and overrides the
block-batched operations to run nnz-balanced contiguous shards
(:mod:`repro.perf.sharding`) on a process-wide
:class:`~concurrent.futures.ThreadPoolExecutor`.

Numerical contract: every block's reduction is computed with exactly the
vectorized kernels' left-to-right segment order, and shards align to
block boundaries — so results are **bit-identical** to the vectorized set
and across worker counts (the differential suite and the seeded
determinism tests pin this).

Two escape hatches keep semantics and small-input latency intact:

* tamper-hook paths stay serial (the hook-call sequence — one call per
  block, in order — is part of the kernel contract);
* inputs below :attr:`ParallelKernels.serial_cutoff` work units skip the
  pool entirely and run the inherited vectorized code.

Worker count: the ``n_workers`` constructor argument wins; otherwise the
``REPRO_KERNEL_WORKERS`` environment variable; otherwise
``min(4, os.cpu_count())``.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels.base import ACCUMULATION_DTYPE, Tamper, validate_blocks
from repro.kernels.vectorized import VectorizedKernels, _check_operand

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotations only)
    from repro.core.blocking import BlockPartition
    from repro.sparse.csr import CsrMatrix

#: Environment variable selecting the worker count for parallel kernels.
WORKERS_ENV_VAR = "REPRO_KERNEL_WORKERS"

#: Default upper bound on workers when the environment does not choose.
DEFAULT_MAX_WORKERS = 4

#: Below this many work units (rows + nnz touched) threading overhead
#: exceeds the win; the inherited serial vectorized code runs instead.
DEFAULT_SERIAL_CUTOFF = 1 << 15

_EXECUTORS: Dict[int, ThreadPoolExecutor] = {}
_EXECUTORS_LOCK = threading.Lock()


def default_workers() -> int:
    """Resolve the worker count from the environment / host CPU count."""
    env = os.environ.get(WORKERS_ENV_VAR)
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{WORKERS_ENV_VAR} must be a positive integer, got {env!r}"
            ) from None
        if value < 1:
            raise ConfigurationError(
                f"{WORKERS_ENV_VAR} must be a positive integer, got {env!r}"
            )
        return value
    return min(DEFAULT_MAX_WORKERS, os.cpu_count() or 1)


def get_executor(n_workers: int) -> ThreadPoolExecutor:
    """Process-wide executor for ``n_workers`` (created lazily, reused).

    Shared by the parallel kernel set and :class:`repro.perf.ProtectedPlan`
    so repeated multiplies never pay thread start-up costs.
    """
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    with _EXECUTORS_LOCK:
        executor = _EXECUTORS.get(n_workers)
        if executor is None:
            executor = ThreadPoolExecutor(
                max_workers=n_workers, thread_name_prefix=f"repro-kern{n_workers}"
            )
            _EXECUTORS[n_workers] = executor
        return executor


def _work_prefix(lengths: np.ndarray) -> np.ndarray:
    """Cumulative work prefix (``[0, ...]``) from per-item work amounts."""
    prefix = np.zeros(lengths.size + 1, dtype=np.int64)
    # reprolint: disable=ABFT002 -- integer work prefix; exact in any order
    np.cumsum(lengths, out=prefix[1:])
    return prefix


class ParallelKernels(VectorizedKernels):
    """Thread-sharded variants of the block-batched vectorized kernels.

    Args:
        n_workers: shard/worker count; ``None`` resolves dynamically per
            call (``REPRO_KERNEL_WORKERS`` env, else ``min(4, cpus)``).
        serial_cutoff: work-unit threshold below which calls run serially;
            pass 0 to force threading even on tiny inputs (tests do).
    """

    name = "parallel"

    def __init__(
        self,
        n_workers: Optional[int] = None,
        serial_cutoff: int = DEFAULT_SERIAL_CUTOFF,
    ) -> None:
        if n_workers is not None and n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if serial_cutoff < 0:
            raise ConfigurationError(
                f"serial_cutoff must be >= 0, got {serial_cutoff}"
            )
        self._n_workers = n_workers
        self.serial_cutoff = serial_cutoff

    @property
    def n_workers(self) -> int:
        """Effective worker count for the next dispatched call."""
        return self._n_workers if self._n_workers is not None else default_workers()

    # ------------------------------------------------------------------
    # Shard execution
    # ------------------------------------------------------------------
    def _run_shards(self, fn: Callable[[int], None], n_shards: int) -> None:
        """Execute ``fn(0..n_shards-1)``; threads only when it can help."""
        if n_shards <= 1:
            if n_shards == 1:
                fn(0)
            return
        executor = get_executor(self.n_workers)
        futures = [executor.submit(fn, i) for i in range(n_shards)]
        for future in futures:
            future.result()

    def _cuts(self, work_prefix: np.ndarray) -> np.ndarray:
        from repro.perf.sharding import balanced_cuts

        return balanced_cuts(work_prefix, self.n_workers)

    def _serial(self, total_work: int, n_items: int) -> bool:
        return n_items <= 1 or self.n_workers <= 1 or total_work < self.serial_cutoff

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def result_checksums(
        self,
        weights: np.ndarray,
        r: np.ndarray,
        partition: "BlockPartition",
        out: Optional[np.ndarray] = None,
        workspace: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        n_blocks = partition.n_blocks
        if n_blocks == 0 or self._serial(r.size, n_blocks):
            return super().result_checksums(
                weights, r, partition, out=out, workspace=workspace
            )
        if out is None:
            out = np.empty(n_blocks, dtype=ACCUMULATION_DTYPE)
        starts = partition.block_starts()
        cuts = self._cuts(starts)

        def shard(i: int) -> None:
            b0, b1 = int(cuts[i]), int(cuts[i + 1])
            lo, hi = int(starts[b0]), int(starts[b1])
            with np.errstate(invalid="ignore", over="ignore"):
                if workspace is None:
                    weighted = weights[lo:hi] * r[lo:hi]
                else:
                    weighted = workspace[lo:hi]
                    np.multiply(weights[lo:hi], r[lo:hi], out=weighted)
                # reprolint: disable=ABFT002 -- identical per-block reduceat
                # order as the vectorized set; shards align to block starts
                np.add.reduceat(weighted, starts[b0:b1] - lo, out=out[b0:b1])

        self._run_shards(shard, cuts.size - 1)
        return out

    def result_checksums_for_blocks(
        self,
        weights: np.ndarray,
        r: np.ndarray,
        partition: "BlockPartition",
        blocks: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        blocks = validate_blocks(blocks, partition.n_blocks)
        starts = partition.block_starts()
        span = starts[blocks + 1] - starts[blocks] if blocks.size else blocks
        # reprolint: disable=ABFT002 -- integer work/count accounting; exact in any order
        total = int(span.sum()) if blocks.size else 0
        if self._serial(total, blocks.size):
            return super().result_checksums_for_blocks(
                weights, r, partition, blocks, out=out
            )
        if out is None:
            out = np.empty(blocks.size, dtype=ACCUMULATION_DTYPE)
        cuts = self._cuts(_work_prefix(span))

        def shard(i: int) -> None:
            c0, c1 = int(cuts[i]), int(cuts[i + 1])
            VectorizedKernels.result_checksums_for_blocks(
                self, weights, r, partition, blocks[c0:c1], out=out[c0:c1]
            )

        self._run_shards(shard, cuts.size - 1)
        return out

    # ------------------------------------------------------------------
    # Correction
    # ------------------------------------------------------------------
    def correct_blocks(
        self,
        matrix: "CsrMatrix",
        partition: "BlockPartition",
        b: np.ndarray,
        r: np.ndarray,
        blocks: np.ndarray,
        tamper: Tamper = None,
    ) -> Tuple[int, int]:
        blocks = validate_blocks(blocks, partition.n_blocks)
        if tamper is not None:
            # The hook-call sequence (one call per block, in order) is part
            # of the kernel contract; fault campaigns stay serial.
            return super().correct_blocks(matrix, partition, b, r, blocks, tamper)
        b = _check_operand(matrix, b)
        starts = partition.block_starts()
        work = (
            matrix.indptr[starts[blocks + 1]]
            - matrix.indptr[starts[blocks]]
            + (starts[blocks + 1] - starts[blocks])
            if blocks.size
            else blocks
        )
        # reprolint: disable=ABFT002 -- integer work/count accounting; exact in any order
        total = int(work.sum()) if blocks.size else 0
        if self._serial(total, blocks.size):
            return super().correct_blocks(matrix, partition, b, r, blocks, None)
        cuts = self._cuts(_work_prefix(work))
        counts: List[Tuple[int, int]] = [(0, 0)] * (cuts.size - 1)

        def shard(i: int) -> None:
            c0, c1 = int(cuts[i]), int(cuts[i + 1])
            counts[i] = VectorizedKernels.correct_blocks(
                self, matrix, partition, b, r, blocks[c0:c1], None
            )

        self._run_shards(shard, cuts.size - 1)
        # reprolint: disable=ABFT002 -- integer work/count accounting; exact in any order
        return sum(c[0] for c in counts), sum(c[1] for c in counts)

    def row_checksums(
        self, csr: "CsrMatrix", rows: np.ndarray, b: np.ndarray
    ) -> Tuple[np.ndarray, int]:
        rows = validate_blocks(rows, csr.n_rows)
        work = csr.indptr[rows + 1] - csr.indptr[rows] + 1 if rows.size else rows
        # reprolint: disable=ABFT002 -- integer work/count accounting; exact in any order
        total = int(work.sum()) if rows.size else 0
        if self._serial(total, rows.size):
            return super().row_checksums(csr, rows, b)
        b = _check_operand(csr, b)
        values = np.empty(rows.size, dtype=ACCUMULATION_DTYPE)
        cuts = self._cuts(_work_prefix(work))
        counts: List[int] = [0] * (cuts.size - 1)

        def shard(i: int) -> None:
            c0, c1 = int(cuts[i]), int(cuts[i + 1])
            vals, nnz = VectorizedKernels.row_checksums(self, csr, rows[c0:c1], b)
            values[c0:c1] = vals
            counts[i] = nnz

        self._run_shards(shard, cuts.size - 1)
        # reprolint: disable=ABFT002 -- integer work/count accounting; exact in any order
        return values, sum(counts)

    # ------------------------------------------------------------------
    # Multi-RHS (SpMM)
    # ------------------------------------------------------------------
    def result_checksums_multi(
        self,
        r: np.ndarray,
        partition: "BlockPartition",
        weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        n_blocks = partition.n_blocks
        if n_blocks == 0 or self._serial(r.size, n_blocks):
            return super().result_checksums_multi(r, partition, weights)
        out = np.empty((n_blocks, r.shape[1]), dtype=ACCUMULATION_DTYPE)
        starts = partition.block_starts()
        cuts = self._cuts(starts)

        def shard(i: int) -> None:
            b0, b1 = int(cuts[i]), int(cuts[i + 1])
            lo, hi = int(starts[b0]), int(starts[b1])
            with np.errstate(invalid="ignore", over="ignore"):
                values = (
                    r[lo:hi] if weights is None else weights[lo:hi, None] * r[lo:hi]
                )
                # reprolint: disable=ABFT002 -- identical per-block reduceat
                # order as the vectorized set; shards align to block starts
                np.add.reduceat(values, starts[b0:b1] - lo, axis=0, out=out[b0:b1])

        self._run_shards(shard, cuts.size - 1)
        return out

    def result_checksums_multi_for_blocks(
        self,
        r: np.ndarray,
        partition: "BlockPartition",
        blocks: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        blocks = validate_blocks(blocks, partition.n_blocks)
        starts = partition.block_starts()
        span = starts[blocks + 1] - starts[blocks] if blocks.size else blocks
        # reprolint: disable=ABFT002 -- integer work/count accounting; exact in any order
        total = int(span.sum()) * max(r.shape[1], 1) if blocks.size else 0
        if self._serial(total, blocks.size):
            return super().result_checksums_multi_for_blocks(
                r, partition, blocks, weights
            )
        out = np.empty((blocks.size, r.shape[1]), dtype=ACCUMULATION_DTYPE)
        cuts = self._cuts(_work_prefix(span))

        def shard(i: int) -> None:
            c0, c1 = int(cuts[i]), int(cuts[i + 1])
            out[c0:c1] = VectorizedKernels.result_checksums_multi_for_blocks(
                self, r, partition, blocks[c0:c1], weights
            )

        self._run_shards(shard, cuts.size - 1)
        return out

    def correct_cells(
        self,
        matrix: "CsrMatrix",
        partition: "BlockPartition",
        b: np.ndarray,
        r: np.ndarray,
        cells: np.ndarray,
        tamper: Tamper = None,
    ) -> Tuple[int, int]:
        cells = np.asarray(cells, dtype=np.int64).reshape(-1, 2)
        if tamper is not None:
            return super().correct_cells(matrix, partition, b, r, cells, tamper)
        blocks = validate_blocks(cells[:, 0], partition.n_blocks)
        starts = partition.block_starts()
        work = (
            matrix.indptr[starts[blocks + 1]]
            - matrix.indptr[starts[blocks]]
            + (starts[blocks + 1] - starts[blocks])
            if blocks.size
            else blocks
        )
        # reprolint: disable=ABFT002 -- integer work/count accounting; exact in any order
        total = int(work.sum()) if blocks.size else 0
        if self._serial(total, cells.shape[0]):
            return super().correct_cells(matrix, partition, b, r, cells, None)
        cuts = self._cuts(_work_prefix(work))
        counts: List[Tuple[int, int]] = [(0, 0)] * (cuts.size - 1)

        def shard(i: int) -> None:
            c0, c1 = int(cuts[i]), int(cuts[i + 1])
            counts[i] = VectorizedKernels.correct_cells(
                self, matrix, partition, b, r, cells[c0:c1], None
            )

        self._run_shards(shard, cuts.size - 1)
        # reprolint: disable=ABFT002 -- integer work/count accounting; exact in any order
        return sum(c[0] for c in counts), sum(c[1] for c in counts)
