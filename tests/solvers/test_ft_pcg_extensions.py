"""Unit tests for the extension PCG schemes (dual, hybrid)."""

import numpy as np
import pytest

from repro.solvers import SCHEMES, FtPcgOptions, run_pcg
from repro.sparse import random_spd


@pytest.fixture(scope="module")
def system():
    a = random_spd(300, 3600, seed=141)
    x_true = np.random.default_rng(141).standard_normal(300)
    return a, a.matvec(x_true)


def test_extension_schemes_registered():
    assert "dual" in SCHEMES
    assert "hybrid" in SCHEMES


@pytest.mark.parametrize("scheme", ["dual", "hybrid"])
def test_fault_free_runs_converge(system, scheme):
    a, b = system
    result = run_pcg(a, b, scheme=scheme, error_rate=0.0, seed=1)
    assert result.correct
    assert result.injections == 0
    assert result.rollbacks == 0


@pytest.mark.parametrize("scheme", ["dual", "hybrid"])
def test_extension_schemes_survive_moderate_rates(system, scheme):
    a, b = system
    correct = sum(
        run_pcg(a, b, scheme=scheme, error_rate=1e-6, seed=s).correct
        for s in range(6)
    )
    assert correct >= 5


def test_hybrid_saves_checkpoints(system):
    a, b = system
    result = run_pcg(a, b, scheme="hybrid", error_rate=0.0, seed=2)
    assert result.checkpoint_saves >= 1  # at least the initial snapshot


def test_hybrid_rolls_back_only_on_uncorrectable(system):
    """At moderate rates every error is corrected in place: zero rollbacks
    while detections accumulate — unlike the checkpoint baseline."""
    a, b = system
    hybrid_detections = hybrid_rollbacks = checkpoint_rollbacks = 0
    for seed in range(6):
        hybrid = run_pcg(a, b, scheme="hybrid", error_rate=2e-5, seed=seed)
        checkpoint = run_pcg(a, b, scheme="checkpoint", error_rate=2e-5, seed=seed)
        hybrid_detections += hybrid.detections
        hybrid_rollbacks += hybrid.rollbacks
        checkpoint_rollbacks += checkpoint.rollbacks
    assert hybrid_detections > 0
    assert hybrid_rollbacks == 0
    assert checkpoint_rollbacks >= 1


def test_hybrid_rolls_back_under_extreme_rates(system):
    """Push hard enough and some multiplies become uncorrectable; the
    hybrid then uses its rollback safety net instead of failing."""
    a, b = system
    options = FtPcgOptions(max_correction_rounds=1, max_iteration_factor=2)
    rolled = 0
    for seed in range(8):
        result = run_pcg(
            a, b, scheme="hybrid", error_rate=2e-4, seed=seed, options=options
        )
        rolled += result.rollbacks
    assert rolled >= 1


def test_dual_cheaper_than_ours_under_heavy_correction(system):
    """Row repair beats block recomputation once corrections are frequent
    on a matrix whose blocks carry real work."""
    big = random_spd(1500, 900_000, locality=0.5, seed=142)
    rhs = big.matvec(np.random.default_rng(142).standard_normal(1500))
    options = FtPcgOptions(max_iteration_factor=1)
    rate = 3e-7
    dual = run_pcg(big, rhs, scheme="dual", error_rate=rate, seed=4, options=options)
    ours = run_pcg(big, rhs, scheme="ours", error_rate=rate, seed=4, options=options)
    assert dual.correct and ours.correct
    # Identical iteration trajectory (same seed/arrivals), different repair.
    assert dual.iterations == ours.iterations


def test_deterministic_extension_runs(system):
    a, b = system
    first = run_pcg(a, b, scheme="dual", error_rate=1e-5, seed=5)
    second = run_pcg(a, b, scheme="dual", error_rate=1e-5, seed=5)
    assert first.seconds == second.seconds
    np.testing.assert_array_equal(first.x, second.x)
