"""Escaping self-mutation without refresh (ABFT010 must fire)."""


class ChecksumMatrix:
    def __init__(self, data):
        self.data = list(data)
        self.checksums = [0.0]

    def scale(self, factor):
        """Mutates protected storage; neither it nor its caller refreshes."""
        self.data[0] = self.data[0] * factor  # MARK:ABFT010

    def refresh(self):
        self.checksums = [float(len(self.data))]
