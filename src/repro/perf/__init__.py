"""repro.perf — planned, shard-parallel execution for the protected SpMV.

The paper's overhead argument assumes the detection stream rides along a
well-executed SpMV; this package makes the *execution* side real:

* :func:`balanced_cuts` / :func:`shard_rows` / :func:`shard_blocks` —
  nnz-balanced (not row-count-balanced) contiguous shard boundaries,
  optionally aligned to checksum-block starts so a block never straddles
  a shard;
* :class:`SpmvPlan` — a reusable execution plan for ``y = A b`` on a
  fixed matrix: per-shard index/scratch views are precomputed once and
  every :meth:`SpmvPlan.execute` reuses them, performing no new array
  allocations;
* :class:`ProtectedPlan` — the planned protected multiply: for a fixed
  ``(matrix, partition, checksum)`` triple the steady-state loop (SpMV,
  operand/result checksums, bound, syndrome compare) runs entirely in
  preallocated buffers, with multi-shard clean multiplies fusing each
  shard's multiply with its own detection and first correction round;
* a registry of *execution backends* deciding where those fused shard
  tasks run (:mod:`repro.perf.backends`): ``"serial"``, ``"threads"``
  (the shared kernel thread pool) or ``"processes"`` — a persistent
  multicore worker pool over a :class:`~repro.perf.shm.Arena` of
  shared memory (:mod:`repro.perf.process_backend`).  Selected via
  ``AbftConfig(parallel=...)``, the ``REPRO_PARALLEL`` environment
  variable, or an explicit ``ProtectedPlan(parallel=...)`` argument.

Plans are built via :meth:`repro.core.FaultTolerantSpMV.planned`, which
caches one plan per operator (``plan.cache_hits`` telemetry counter).
"""

from repro.perf.backends import (
    BACKEND_ENV_VAR,
    BUILTIN_BACKENDS,
    PlanBackend,
    ThreadsBackend,
    available_backends,
    canonical_backend_name,
    make_backend,
    register_backend,
    resolve_backend_name,
    unregister_backend,
)
from repro.perf.plan import FusedShardBuffers, ProtectedPlan, SpmvPlan
from repro.perf.process_backend import (
    ProcessBackend,
    shutdown_all_process_backends,
)
from repro.perf.sharding import balanced_cuts, shard_blocks, shard_rows
from repro.perf.shm import Arena, ArenaField, ArenaLayout

__all__ = [
    "SpmvPlan",
    "ProtectedPlan",
    "FusedShardBuffers",
    "balanced_cuts",
    "shard_blocks",
    "shard_rows",
    "BACKEND_ENV_VAR",
    "BUILTIN_BACKENDS",
    "PlanBackend",
    "ThreadsBackend",
    "ProcessBackend",
    "available_backends",
    "canonical_backend_name",
    "make_backend",
    "register_backend",
    "resolve_backend_name",
    "unregister_backend",
    "shutdown_all_process_backends",
    "Arena",
    "ArenaField",
    "ArenaLayout",
]
