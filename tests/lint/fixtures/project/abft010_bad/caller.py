"""Non-refreshing caller that makes the stale mutation escape."""

from matrix import ChecksumMatrix


def double(matrix: ChecksumMatrix):
    matrix.scale(2.0)
    return matrix
