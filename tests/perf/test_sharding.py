"""Unit tests for nnz-balanced shard boundaries (repro.perf.sharding)."""

import numpy as np
import pytest

from repro.core.blocking import BlockPartition
from repro.errors import ConfigurationError
from repro.perf import balanced_cuts, shard_blocks, shard_rows
from repro.sparse import random_spd


def _prefix(lengths):
    return np.concatenate(([0], np.cumsum(lengths))).astype(np.float64)


def test_cuts_cover_range_and_strictly_increase():
    rng = np.random.default_rng(0)
    prefix = _prefix(rng.integers(0, 50, size=200))
    for n_shards in (1, 2, 3, 7, 16):
        cuts = balanced_cuts(prefix, n_shards)
        assert cuts.dtype == np.int64
        assert cuts[0] == 0
        assert cuts[-1] == 200
        assert np.all(np.diff(cuts) > 0)
        assert cuts.size <= n_shards + 1


def test_cuts_balance_work_within_one_unit():
    """Without collapsed cuts each shard is ideal +/- one unit of work."""
    rng = np.random.default_rng(1)
    lengths = rng.integers(1, 20, size=1000)
    prefix = _prefix(lengths)
    n_shards = 8
    cuts = balanced_cuts(prefix, n_shards)
    assert cuts.size == n_shards + 1
    work = np.diff(prefix[cuts])
    ideal = prefix[-1] / n_shards
    assert work.max() <= ideal + lengths.max()


def test_single_shard_and_zero_work():
    prefix = _prefix([3, 1, 4])
    np.testing.assert_array_equal(balanced_cuts(prefix, 1), [0, 3])
    np.testing.assert_array_equal(balanced_cuts(np.zeros(11), 4), [0, 10])


def test_empty_unit_range():
    np.testing.assert_array_equal(balanced_cuts(np.array([0.0]), 4), [0])


def test_one_giant_unit_collapses_shards():
    cuts = balanced_cuts(_prefix([0, 0, 100, 0]), 4)
    assert cuts[0] == 0
    assert cuts[-1] == 4
    assert np.all(np.diff(cuts) > 0)
    # The giant unit cannot be split further, so fewer spans come back.
    assert cuts.size <= 5


def test_rejects_bad_arguments():
    with pytest.raises(ConfigurationError, match="n_shards"):
        balanced_cuts(np.array([0.0, 1.0]), 0)
    with pytest.raises(ConfigurationError, match="1-D and non-empty"):
        balanced_cuts(np.zeros((2, 2)), 2)
    with pytest.raises(ConfigurationError, match="1-D and non-empty"):
        balanced_cuts(np.empty(0), 2)


def test_shard_rows_balances_nnz_not_row_count():
    """A skewed matrix gets uneven row spans but near-even work spans."""
    n = 400
    lengths = np.ones(n, dtype=np.int64)
    lengths[:20] = 50  # hot rows concentrate the work up front
    indptr = np.concatenate(([0], np.cumsum(lengths)))
    cuts = shard_rows(indptr, 4)
    assert cuts[0] == 0 and cuts[-1] == n
    work = np.diff(indptr[cuts] + cuts)  # nnz + row_cost * rows per shard
    total = indptr[-1] + n
    assert work.max() <= total / 4 + (50 + 1)
    # Row-count balance would put ~100 rows per shard; the work balance
    # must cut the hot prefix much shorter than that.
    assert cuts[1] < 100


def test_shard_blocks_aligns_to_block_starts():
    matrix = random_spd(256, 3000, seed=11)
    partition = BlockPartition(256, 32)
    starts = partition.block_starts()
    cuts = shard_blocks(matrix.indptr, starts, 4)
    assert cuts[0] == 0
    assert cuts[-1] == partition.n_blocks
    assert np.all(np.diff(cuts) > 0)
    # Cuts index the block axis, so the induced row cuts land on block
    # starts by construction; they must also be valid row boundaries.
    row_cuts = starts[cuts]
    assert row_cuts[0] == 0 and row_cuts[-1] == 256
    assert np.all(np.diff(row_cuts) > 0)


def test_shard_blocks_more_shards_than_blocks():
    matrix = random_spd(64, 600, seed=12)
    partition = BlockPartition(64, 32)
    cuts = shard_blocks(matrix.indptr, partition.block_starts(), 16)
    assert cuts.size <= partition.n_blocks + 1
    assert cuts[-1] == partition.n_blocks
