"""Edge-case tests for the ABFT core: degenerate shapes and extremes."""

import numpy as np
import pytest

from repro.core import (
    AbftConfig,
    BlockAbftDetector,
    ChecksumMatrix,
    FaultTolerantSpMV,
)
from repro.sparse import CooMatrix, random_spd


def test_one_by_one_matrix():
    matrix = CooMatrix.from_entries((1, 1), [(0, 0, 3.0)]).to_csr()
    ft = FaultTolerantSpMV(matrix, block_size=32)
    result = ft.multiply(np.array([2.0]))
    assert result.clean
    np.testing.assert_array_equal(result.value, [6.0])


def test_empty_square_matrix():
    matrix = CooMatrix.from_entries((0, 0), []).to_csr()
    detector = BlockAbftDetector(matrix)
    assert detector.n_blocks == 0
    report = detector.detect(np.empty(0), np.empty(0))
    assert report.clean


def test_all_zero_matrix_detects_injected_error():
    matrix = CooMatrix.from_entries((8, 8), []).to_csr()
    detector = BlockAbftDetector(matrix, AbftConfig(block_size=4))
    b = np.ones(8)
    r = matrix.matvec(b)
    assert detector.detect(b, r).clean
    r[2] = 1.0  # any non-zero result is an error for the zero matrix
    assert 0 in detector.detect(b, r).flagged


def test_zero_operand_vector():
    matrix = random_spd(64, 600, seed=171)
    ft = FaultTolerantSpMV(matrix, block_size=16)
    result = ft.multiply(np.zeros(64))
    assert result.clean
    np.testing.assert_array_equal(result.value, np.zeros(64))


def test_zero_operand_flags_any_corruption():
    """beta = 0 makes every threshold 0: any non-zero syndrome flags."""
    matrix = random_spd(64, 600, seed=172)
    detector = BlockAbftDetector(matrix, AbftConfig(block_size=16))
    b = np.zeros(64)
    r = matrix.matvec(b)
    r[5] = 1e-300
    assert 0 in detector.detect(b, r).flagged


def test_rectangular_matrix_protection():
    """The scheme never requires squareness — protect a 20x50 operator."""
    rng = np.random.default_rng(173)
    dense = np.zeros((20, 50))
    for _ in range(100):
        dense[rng.integers(0, 20), rng.integers(0, 50)] = rng.standard_normal()
    matrix = CooMatrix.from_dense(dense).to_csr()
    ft = FaultTolerantSpMV(matrix, block_size=8)
    b = rng.standard_normal(50)
    reference = matrix.matvec(b)
    state = {"armed": True}

    def tamper(stage, data, work):
        if stage == "result" and state["armed"]:
            data[13] += 5.0
            state["armed"] = False

    result = ft.multiply(b, tamper=tamper)
    assert 13 // 8 in result.corrected_blocks
    np.testing.assert_array_equal(result.value, reference)


def test_block_size_larger_than_matrix():
    matrix = random_spd(10, 60, seed=174)
    ft = FaultTolerantSpMV(matrix, block_size=512)
    assert ft.detector.n_blocks == 1
    b = np.ones(10)
    result = ft.multiply(b)
    assert result.clean


def test_huge_value_operand_no_false_positive():
    matrix = random_spd(128, 1200, seed=175)
    detector = BlockAbftDetector(matrix)
    b = np.full(128, 1e150)
    assert detector.detect(b, matrix.matvec(b)).clean


def test_tiny_value_operand_no_false_positive():
    matrix = random_spd(128, 1200, seed=176)
    detector = BlockAbftDetector(matrix)
    b = np.full(128, 1e-150)
    assert detector.detect(b, matrix.matvec(b)).clean


def test_checksum_matrix_of_empty_rows_block():
    """A block whose rows are all empty contributes an empty C row."""
    entries = [(0, 0, 1.0), (7, 7, 2.0)]  # rows 1..6 empty
    matrix = CooMatrix.from_entries((8, 8), entries).to_csr()
    checksum = ChecksumMatrix.build(matrix, block_size=2)
    assert checksum.nonempty_columns[1] == 0  # block of rows 2-3
    b = np.ones(8)
    np.testing.assert_allclose(
        checksum.operand_checksums(b),
        checksum.result_checksums(matrix.matvec(b)),
    )


def test_duplicate_heavy_matrix_round_trips_through_protection():
    coo = CooMatrix.from_entries(
        (4, 4), [(0, 0, 1.0)] * 10 + [(3, 3, -2.0)] * 5
    )
    matrix = coo.to_csr()
    assert matrix.nnz == 2
    ft = FaultTolerantSpMV(matrix, block_size=2)
    result = ft.multiply(np.array([1.0, 2.0, 3.0, 4.0]))
    np.testing.assert_array_equal(result.value, [10.0, 0.0, 0.0, -40.0])
