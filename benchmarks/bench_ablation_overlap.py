"""Ablation — task-parallel overlap of ``Ab`` and ``Cb`` (DESIGN.md decision 4).

The paper's Figure 1 runs the SpMV and the operand checksum on concurrent
streams.  Serializing the device (one stream) shows how much of the
scheme's low overhead comes from that overlap.
"""

from conftest import write_result

from repro.analysis import detection_overhead
from repro.analysis.ablations import ablate_overlap, render_overlap_ablation
from repro.machine import TESLA_K80_NO_OVERLAP, DeviceParams, Machine
from repro.sparse import QUICK_SUITE


def test_overlap_ablation(benchmark, full_suite):
    subset = [(s, m) for s, m in full_suite if s.name in QUICK_SUITE]
    ablation = ablate_overlap(subset)
    write_result("ablation_overlap", render_overlap_ablation(ablation))

    # Overlap must help on every matrix (it is why b_s=1 costs ~84 %, not
    # >100 %, in Figure 4).
    for overlapped, serialized in zip(ablation.overlapped, ablation.serialized):
        assert serialized > overlapped

    matrix = subset[0][1]
    serial = Machine(TESLA_K80_NO_OVERLAP)
    benchmark(lambda: detection_overhead(matrix, "block", machine=serial))


def test_streams_parameter_validation(benchmark):
    # The serialized device is a first-class configuration, not a hack.
    assert TESLA_K80_NO_OVERLAP.streams == 1
    assert DeviceParams().streams >= 2
    benchmark(lambda: Machine(TESLA_K80_NO_OVERLAP).params.streams)
