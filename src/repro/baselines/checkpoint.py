"""Checkpoint/rollback baseline (the paper's traditional recovery scheme).

The PCG case study compares against a traditional scheme that samples the
solver state every 20 iterations into ECC-protected memory and, when the
dense check detects an error, restarts from the last snapshot.  This module
provides both halves: the :class:`CheckpointStore` holding snapshots and
the :class:`CheckpointSpMV` scheme whose detections signal a rollback; the
rollback-driving loop lives in :mod:`repro.solvers.ft_pcg`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.baselines.dense_check import DenseCheckSpMV
from repro.errors import ConfigurationError
from repro.machine import (
    KernelCost,
    Machine,
    checkpoint_restore_cost,
    checkpoint_store_cost,
)
from repro.sparse.csr import CsrMatrix

#: Checkpoint interval used throughout the paper's evaluation (Section VI).
DEFAULT_CHECKPOINT_INTERVAL = 20


@dataclass
class CheckpointStore:
    """Snapshot storage for iterative-solver state.

    The store itself is assumed reliable (ECC-protected memory), matching
    the paper's setup; costs of moving state in and out are returned as
    :class:`KernelCost` so the caller charges them to its meter.
    """

    _arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    _scalars: Dict[str, float] = field(default_factory=dict)
    _iteration: int = -1
    saves: int = 0
    restores: int = 0

    @property
    def has_checkpoint(self) -> bool:
        return self._iteration >= 0

    @property
    def iteration(self) -> int:
        """Solver iteration the stored snapshot belongs to (-1 if none)."""
        return self._iteration

    def save(
        self,
        iteration: int,
        arrays: Dict[str, np.ndarray],
        scalars: Dict[str, float] | None = None,
    ) -> KernelCost:
        """Snapshot the given state; returns the transfer cost to charge."""
        if iteration < 0:
            raise ConfigurationError(f"iteration must be >= 0, got {iteration}")
        self._arrays = {name: np.array(value, copy=True) for name, value in arrays.items()}
        self._scalars = dict(scalars or {})
        self._iteration = iteration
        self.saves += 1
        return checkpoint_store_cost(self._total_elements())

    def restore(self) -> Tuple[int, Dict[str, np.ndarray], Dict[str, float], KernelCost]:
        """Return ``(iteration, arrays, scalars, cost)`` of the snapshot.

        Arrays are fresh copies, so the caller can mutate them freely and
        restore again later.
        """
        if not self.has_checkpoint:
            raise ConfigurationError("no checkpoint has been saved")
        self.restores += 1
        arrays = {name: value.copy() for name, value in self._arrays.items()}
        return (
            self._iteration,
            arrays,
            dict(self._scalars),
            checkpoint_restore_cost(self._total_elements()),
        )

    def _total_elements(self) -> int:
        return int(sum(value.size for value in self._arrays.values())) + len(
            self._scalars
        )


class CheckpointSpMV(DenseCheckSpMV):
    """Dense-checked SpMV whose recovery path is checkpoint rollback.

    The multiply itself is detection-only (numerically identical to
    :class:`DenseCheckSpMV` — a detection comes back ``exhausted`` because
    the SpMV cannot repair itself); the scheme carries a
    :class:`CheckpointStore` (``.store``) that the driving solver saves to
    every :data:`DEFAULT_CHECKPOINT_INTERVAL` iterations and rolls back to
    when a multiply reports a detection.
    """

    name = "checkpoint"

    def __init__(
        self,
        matrix: CsrMatrix,
        machine: Optional[Machine] = None,
        bound_scale: float = 1.0,
        kernel: object = None,
        telemetry: object = None,
    ) -> None:
        super().__init__(
            matrix,
            machine=machine,
            bound_scale=bound_scale,
            kernel=kernel,
            telemetry=telemetry,
        )
        self.store = CheckpointStore()
