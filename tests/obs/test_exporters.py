"""Exporter behavior and the exporter registry contract."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    BUILTIN_EXPORTERS,
    Exporter,
    InMemoryExporter,
    JsonlExporter,
    NullExporter,
    TextSummaryExporter,
    available_exporters,
    make_exporter,
    register_exporter,
    unregister_exporter,
)


def test_builtins_are_available():
    names = available_exporters()
    for builtin in BUILTIN_EXPORTERS:
        assert builtin in names


def test_make_exporter_instantiates_builtins():
    assert isinstance(make_exporter("off"), NullExporter)
    assert isinstance(make_exporter("memory"), InMemoryExporter)
    assert isinstance(make_exporter("jsonl"), JsonlExporter)
    assert isinstance(make_exporter("text"), TextSummaryExporter)


def test_make_exporter_unknown_name():
    with pytest.raises(ConfigurationError, match="unknown exporter"):
        make_exporter("nope")


def test_register_and_unregister_custom_exporter():
    class Custom(Exporter):
        def __init__(self):
            self.seen = []

        def emit(self, event):
            self.seen.append(event)

    try:
        register_exporter("custom-test", Custom)
        assert "custom-test" in available_exporters()
        exporter = make_exporter("custom-test")
        exporter.emit({"type": "counter", "name": "x"})
        assert exporter.seen
        # Double registration needs overwrite=True.
        with pytest.raises(ConfigurationError, match="already registered"):
            register_exporter("custom-test", Custom)
        register_exporter("custom-test", Custom, overwrite=True)
    finally:
        unregister_exporter("custom-test")
    assert "custom-test" not in available_exporters()


@pytest.mark.parametrize("builtin", BUILTIN_EXPORTERS)
def test_builtins_are_protected(builtin):
    with pytest.raises(ConfigurationError, match="built-in"):
        register_exporter(builtin, NullExporter, overwrite=True)
    with pytest.raises(ConfigurationError, match="built-in"):
        unregister_exporter(builtin)


def test_register_validates_name_and_factory():
    with pytest.raises(ConfigurationError):
        register_exporter("", NullExporter)
    with pytest.raises(ConfigurationError):
        register_exporter("x-test", "not-callable")


def test_make_exporter_rejects_non_exporter_factories():
    try:
        register_exporter("broken-test", lambda: object())
        with pytest.raises(ConfigurationError, match="not an Exporter"):
            make_exporter("broken-test")
    finally:
        unregister_exporter("broken-test")


def test_in_memory_exporter_buffers_and_clears():
    exporter = InMemoryExporter()
    exporter.emit({"type": "counter", "name": "a"})
    assert len(exporter.events) == 1
    exporter.clear()
    assert exporter.events == []


def test_jsonl_exporter_writes_one_object_per_line(tmp_path):
    path = tmp_path / "events.jsonl"
    exporter = JsonlExporter(path)
    assert not path.exists()  # opening is lazy
    exporter.emit({"type": "counter", "name": "a", "value": 1.0})
    exporter.emit({"type": "gauge", "name": "b", "value": 2.5})
    exporter.close()
    lines = path.read_text().splitlines()
    assert [json.loads(line)["name"] for line in lines] == ["a", "b"]
    exporter.close()  # closing twice is tolerated


def test_jsonl_exporter_reads_path_from_environment(tmp_path, monkeypatch):
    target = tmp_path / "env-events.jsonl"
    monkeypatch.setenv("REPRO_OBS_PATH", str(target))
    exporter = JsonlExporter()
    exporter.emit({"type": "counter", "name": "a", "value": 1.0})
    exporter.close()
    assert target.exists()


def test_text_summary_exporter_renders_on_close():
    import io

    stream = io.StringIO()
    exporter = TextSummaryExporter(stream=stream)
    exporter.emit({"type": "counter", "name": "abft.detections", "value": 1.0})
    exporter.close()
    text = stream.getvalue()
    assert "abft.detections" in text and "== counters ==" in text
    exporter.close()  # buffer drained; second close writes nothing more
    assert stream.getvalue() == text


def test_text_summary_exporter_empty_close_is_silent():
    import io

    stream = io.StringIO()
    TextSummaryExporter(stream=stream).close()
    assert stream.getvalue() == ""
