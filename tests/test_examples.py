"""Smoke tests: the fast examples must run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, timeout: int = 240) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr[-2000:]
    return process.stdout


def test_quickstart_example():
    out = _run("quickstart.py")
    assert "result verified: bit-identical" in out


def test_block_size_tuning_example():
    out = _run("block_size_tuning.py")
    assert "optimal block sizes" in out


@pytest.mark.parametrize(
    "name, marker",
    [
        ("pagerank.py", "protected after late strike"),
        ("fault_model_study.py", "exponent"),
    ],
)
def test_heavier_examples(name, marker):
    assert marker in _run(name)
