"""Typed telemetry instruments and their process-local registry.

Three instrument kinds cover everything the ABFT protocol needs to
explain itself quantitatively:

* :class:`Counter` — monotonic event counts (detections, corrections,
  recomputed blocks, rollbacks, injections);
* :class:`Gauge` — last-value measurements (block counts, residuals);
* :class:`Histogram` — fixed-bucket distributions over log-spaced edges
  (syndrome/bound margins, recompute fractions, span wall-times).

Instruments aggregate in-process (cheap reads from tests and adaptive
policies) *and* forward one structured event per update to the exporter
selected on the owning :class:`repro.obs.telemetry.Telemetry`.  A
:class:`Registry` keys instruments by name and enforces that a name is
never reused with a different type — ``abft.detections`` is a counter
everywhere or nowhere.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

#: Snapshot value type: counters/gauges report floats, histograms a dict.
SnapshotValue = Union[float, Dict[str, object]]


def log_buckets(lo: float, hi: float, per_decade: int = 1) -> Tuple[float, ...]:
    """Log-spaced bucket edges from ``lo`` to ``hi`` (inclusive).

    Args:
        lo: smallest edge (must be positive).
        hi: largest edge (must exceed ``lo``).
        per_decade: number of edges per factor of ten.

    Returns:
        A strictly increasing tuple of edges; observations below ``lo``
        land in the underflow bucket, at/above ``hi`` in the overflow
        bucket.
    """
    if lo <= 0 or hi <= lo:
        raise ConfigurationError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if per_decade < 1:
        raise ConfigurationError(f"per_decade must be >= 1, got {per_decade}")
    n_steps = round(math.log10(hi / lo) * per_decade)
    if n_steps < 1:
        raise ConfigurationError(f"[{lo}, {hi}] spans less than one bucket")
    edges = tuple(lo * 10.0 ** (i / per_decade) for i in range(n_steps + 1))
    return edges


#: Default edges for ratio-like histograms (syndrome margin spans roughly
#: 1e-9 (far below the bound) to 1e+3 (a gross violation)).
DEFAULT_RATIO_BUCKETS = log_buckets(1e-9, 1e3, per_decade=1)

#: Default edges for wall-time histograms (0.1us .. 100s).
DEFAULT_TIME_BUCKETS = log_buckets(1e-7, 1e2, per_decade=1)

#: Default edges for fraction-valued histograms (1e-4 .. 1).
DEFAULT_FRACTION_BUCKETS = log_buckets(1e-4, 1.0, per_decade=1)


class Instrument:
    """Base class: a named aggregate with a one-line snapshot.

    Updates are guarded by a per-instrument lock so instruments shared
    across threads (one process-wide telemetry, protected multiplies on a
    pool) aggregate exactly — ``+=`` on a float is not atomic in Python.
    """

    kind: str = "abstract"

    def __init__(self, name: str) -> None:
        if not name:
            raise ConfigurationError("instrument name must be non-empty")
        self.name = name
        self._lock = threading.Lock()

    def snapshot(self) -> SnapshotValue:
        """Aggregate state as a JSON-friendly value."""
        raise NotImplementedError


class Counter(Instrument):
    """Monotonic counter: only ever increases."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter; negative or non-finite deltas are errors."""
        if not (amount >= 0.0 and math.isfinite(amount)):
            raise ConfigurationError(
                f"counter {self.name!r} increments must be finite and >= 0, "
                f"got {amount!r}"
            )
        with self._lock:
            self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge(Instrument):
    """Last-value gauge: records the most recent measurement."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.value = math.nan
        self.updates = 0

    def set(self, value: float) -> None:
        """Record a measurement (non-finite values are allowed and kept)."""
        with self._lock:
            self.value = float(value)
            self.updates += 1

    def snapshot(self) -> float:
        return self.value


class Histogram(Instrument):
    """Fixed-bucket histogram over strictly increasing edges.

    ``counts`` has ``len(edges) + 1`` slots: index 0 is the underflow
    bucket (values below ``edges[0]``), the last is overflow (values at or
    above ``edges[-1]``).  NaN observations are tallied separately in
    :attr:`nan_count` — they carry no magnitude to bucket.
    """

    kind = "histogram"

    def __init__(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> None:
        super().__init__(name)
        edges = tuple(float(e) for e in (buckets or DEFAULT_RATIO_BUCKETS))
        if len(edges) < 1 or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ConfigurationError(
                f"histogram {name!r} edges must be strictly increasing, got {edges}"
            )
        self.edges: Tuple[float, ...] = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.nan_count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            if math.isnan(value):
                self.nan_count += 1
                return
            self.counts[bisect_right(self.edges, value)] += 1
            self.count += 1
            self.sum += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)

    def observe_many(self, values: Sequence[float]) -> List[float]:
        """Record a batch of observations in one vectorized pass.

        Equivalent to calling :meth:`observe` per value (same bucketing,
        same NaN handling) but buckets with one ``searchsorted`` +
        ``bincount`` instead of a Python-level loop — this is what keeps
        per-block margin recording off the multiply's critical path.

        Returns:
            The observations as plain floats (the event payload).
        """
        arr = np.asarray(values, dtype=float).ravel()
        nan_mask = np.isnan(arr)
        finite = arr[~nan_mask] if nan_mask.any() else arr
        indexes = np.searchsorted(self.edges, finite, side="right")
        binned = np.bincount(indexes, minlength=len(self.counts))
        with np.errstate(over="ignore"):
            # Fault-injected margins reach float64 extremes; saturating
            # to inf matches what scalar accumulation does silently.
            batch_sum = float(finite.sum())
        with self._lock:
            for index in np.flatnonzero(binned):
                self.counts[index] += int(binned[index])
            self.count += int(finite.size)
            self.nan_count += int(np.count_nonzero(nan_mask))
            self.sum += batch_sum
            if finite.size:
                self.min = min(self.min, float(finite.min()))
                self.max = max(self.max, float(finite.max()))
        return arr.tolist()

    @property
    def mean(self) -> float:
        """Mean of the finite observations (NaN when empty)."""
        return self.sum / self.count if self.count else math.nan

    def merge(
        self,
        counts: Sequence[int],
        count: int,
        nan_count: int,
        total: float,
        lo: float,
        hi: float,
    ) -> None:
        """Fold another histogram's delta into this one.

        ``counts``/``count``/``nan_count``/``total`` are per-interval
        deltas; ``lo``/``hi`` are the *cumulative* min/max of the source
        histogram, folded with min/max (idempotent, so a re-merged
        extremum never corrupts the aggregate).  This is the parent-side
        half of the worker delta pipeline (:mod:`repro.obs.pipeline`).
        """
        if len(counts) != len(self.counts):
            raise ConfigurationError(
                f"histogram {self.name!r} merge expects {len(self.counts)} "
                f"bucket counts, got {len(counts)}"
            )
        with self._lock:
            for index, delta in enumerate(counts):
                self.counts[index] += int(delta)
            self.count += int(count)
            self.nan_count += int(nan_count)
            self.sum += float(total)
            self.min = min(self.min, float(lo))
            self.max = max(self.max, float(hi))

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "nan_count": self.nan_count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "edges": list(self.edges),
            "counts": list(self.counts),
        }


class Registry:
    """Process-local instrument registry: one typed instrument per name.

    Requesting an existing name returns the existing instrument;
    requesting it with a different type (or a histogram with different
    buckets) raises :class:`~repro.errors.ConfigurationError`.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = Counter(name)
                self._instruments[name] = instrument
        if not isinstance(instrument, Counter):
            raise ConfigurationError(
                f"instrument {name!r} is a {instrument.kind}, not a counter"
            )
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = Gauge(name)
                self._instruments[name] = instrument
        if not isinstance(instrument, Gauge):
            raise ConfigurationError(
                f"instrument {name!r} is a {instrument.kind}, not a gauge"
            )
        return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Get or create the histogram called ``name``.

        ``buckets`` fixes the edges at creation; a later request with
        *different* explicit edges is a configuration error (omitting
        ``buckets`` accepts whatever the histogram was created with).
        """
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = Histogram(name, buckets)
                self._instruments[name] = instrument
                return instrument
        if not isinstance(instrument, Histogram):
            raise ConfigurationError(
                f"instrument {name!r} is a {instrument.kind}, not a histogram"
            )
        if buckets is not None and tuple(float(e) for e in buckets) != instrument.edges:
            raise ConfigurationError(
                f"histogram {name!r} already exists with different buckets"
            )
        return instrument

    def get(self, name: str) -> Instrument:
        """Look up an instrument; unknown names raise ConfigurationError."""
        try:
            return self._instruments[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown instrument {name!r}; expected one of {self.names()}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        """Registered instrument names, sorted."""
        return tuple(sorted(self._instruments))

    def snapshot(self) -> Dict[str, SnapshotValue]:
        """Aggregate state of every instrument, keyed by name."""
        return {name: inst.snapshot() for name, inst in sorted(self._instruments.items())}
