"""Fixture: telemetry writes on hot paths outside the enabled guard."""


def multiply(telemetry, result):
    telemetry.count("abft.checks")  # MARK:ABFT013
    return result


def detect(tel, margins):
    for margin in margins:
        tel.observe("abft.syndrome_margin", margin)  # MARK:ABFT013


def solve(self, b):
    self.telemetry.gauge("pcg.residual", 0.5)  # MARK:ABFT013
    return b


def batched(worker_telemetry, margins):
    worker_telemetry.observe_many("abft.syndrome_margin", margins)  # MARK:ABFT013


def guard_too_late(telemetry, result):
    telemetry.count("abft.checks")  # MARK:ABFT013
    if telemetry.enabled:
        telemetry.count("abft.detections")
    return result


def wrong_condition(telemetry, verbose, result):
    if verbose:
        telemetry.count("abft.checks")  # MARK:ABFT013
    return result
