"""Fixture: broad except handlers that swallow injected failures."""


def run_trial(trial):
    try:
        return trial()
    except Exception:  # MARK:ABFT005
        return None


def run_tuple(trial):
    try:
        return trial()
    except (ValueError, BaseException):  # MARK:ABFT005
        return None


def run_bare(trial):
    try:
        return trial()
    except:  # MARK:ABFT005
        return None
