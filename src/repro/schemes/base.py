"""The protocol every protection scheme satisfies.

A *scheme* is one complete answer to "how do we run a trustworthy SpMV":
detection, (optional) localization and (optional) correction, bound to one
input matrix.  The registry (:mod:`repro.schemes.registry`) hands out
objects satisfying :class:`ProtectionScheme`; campaigns, solvers and the
CLI program against this protocol only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Protocol, runtime_checkable

import numpy as np

from repro.schemes.result import ProtectedSpmvResult

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.machine import ExecutionMeter, TaskGraph
    from repro.obs import Telemetry
    from repro.sparse.csr import CsrMatrix

#: Fault-campaign hook: ``tamper(stage, data, work)`` fires after each
#: numeric stage with a mutable array (mirrors ``repro.core.corrector``).
TamperHook = Callable[[str, np.ndarray, float], None]


@runtime_checkable
class ProtectionScheme(Protocol):
    """One protected-SpMV driver bound to an input matrix.

    The driver contract all schemes share:

    * ``multiply(b, tamper=None, meter=None)`` executes one protected
      multiply and returns the unified :class:`ProtectedSpmvResult`;
    * the tamper hook fires after every numeric stage (``"result"``,
      ``"t1"``, ``"beta"``, ``"t2"``, ``"corrected"`` as applicable) so
      fault campaigns can corrupt detection and correction arithmetic too;
    * simulated cost is charged to the passed meter (or a fresh one);
    * ``detection_graph()`` exposes the scheme's per-multiply detection
      task graph for overhead modeling (Figures 4-5).
    """

    #: Registry name of the scheme (``"abft"``, ``"bisection"``, ...).
    name: str

    #: The protected input matrix.
    matrix: "CsrMatrix"

    #: The scheme's telemetry stream (``repro.obs``).
    telemetry: "Telemetry"

    def multiply(
        self,
        b: np.ndarray,
        tamper: Optional[TamperHook] = None,
        meter: Optional["ExecutionMeter"] = None,
    ) -> ProtectedSpmvResult:
        """Execute one protected SpMV."""
        ...

    def detection_graph(self) -> "TaskGraph":
        """Task graph of one multiply's detection phase (cost model)."""
        ...
