"""Per-line ``# reprolint: disable=RULE`` suppression comments.

Two placements are recognized:

* a *trailing* comment suppresses findings on its own physical line::

      if beta == 0.0:  # reprolint: disable=ABFT003 -- exact-zero RHS guard

* a *standalone* comment line suppresses findings on the next code line::

      # reprolint: disable=ABFT001 -- fault injection corrupts on purpose
      matrix.data[k] = corrupted

``disable=all`` suppresses every rule; ``disable-file=RULE`` (anywhere in
the file) suppresses the rule for the whole file.  Everything after
`` --`` is the human-readable reason; reasons are strongly encouraged —
reports count reasonless suppressions separately so reviews can spot them.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

#: Matches the directive inside a comment.
DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<reason>.*))?$"
)

#: Sentinel rule name matching every rule.
ALL_RULES = "all"


@dataclass(frozen=True)
class Suppression:
    """One parsed directive."""

    line: int
    rules: FrozenSet[str]
    reason: str
    file_wide: bool


@dataclass
class SuppressionIndex:
    """All directives of one file, indexed for O(1) lookups."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_wide: Set[str] = field(default_factory=set)
    directives: List[Suppression] = field(default_factory=list)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is disabled on ``line`` (or file-wide)."""
        if rule in self.file_wide or ALL_RULES in self.file_wide:
            return True
        rules = self.by_line.get(line)
        return bool(rules) and (rule in rules or ALL_RULES in rules)

    def reasonless(self) -> List[Suppression]:
        """Directives without a ``-- reason`` string (review targets)."""
        return [d for d in self.directives if not d.reason]


def parse_suppressions(source: str) -> SuppressionIndex:
    """Extract every directive from ``source``.

    Tokenizes rather than regex-scanning raw lines so directives inside
    string literals are not mistaken for live suppressions.  Sources that
    fail to tokenize yield an empty index (the engine reports the parse
    error separately).
    """
    index = SuppressionIndex()
    comments: List[tokenize.TokenInfo] = []
    code_lines: Set[int] = set()
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append(token)
            elif token.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENCODING,
                tokenize.ENDMARKER,
            ):
                for line in range(token.start[0], token.end[0] + 1):
                    code_lines.add(line)
    except tokenize.TokenError:
        return index

    total_lines = source.count("\n") + 1
    for token in comments:
        match = DIRECTIVE.search(token.string)
        if match is None:
            continue
        rules = frozenset(
            rule.strip() for rule in match.group("rules").split(",") if rule.strip()
        )
        if not rules:
            continue
        reason = (match.group("reason") or "").strip()
        line = token.start[0]
        file_wide = match.group("kind") == "disable-file"
        index.directives.append(
            Suppression(line=line, rules=rules, reason=reason, file_wide=file_wide)
        )
        if file_wide:
            index.file_wide.update(rules)
            continue
        if line in code_lines:
            target = line  # trailing comment: covers its own line
        else:
            target = _next_code_line(line, code_lines, total_lines)
        index.by_line.setdefault(target, set()).update(rules)
    return index


def _next_code_line(line: int, code_lines: Set[int], total_lines: int) -> int:
    for candidate in range(line + 1, total_lines + 1):
        if candidate in code_lines:
            return candidate
    return line
