"""Fixture: mutations paired with a checksum rebuild, or own-storage setup."""


def tamper_and_rebuild(matrix, checksum_cls, block_size):
    matrix.data[0] = 3.5
    return checksum_cls.build(matrix, block_size)


def refresh_after_mutation(self, b, t1, flagged):
    self.checksum.matrix.data[flagged] = 0.5
    return self._refresh_operand_checksums(b, t1, flagged, None)


class OwnStorage:
    def __init__(self, data):
        self.data = data

    def reset(self, data):
        self.data = data
