"""Unit tests for the end-to-end fault-tolerant SpMV driver."""

import numpy as np
import pytest

from repro.core import AbftConfig, FaultTolerantSpMV, plain_spmv
from repro.errors import ConfigurationError
from repro.machine import ExecutionMeter
from repro.sparse import random_spd


@pytest.fixture
def ft():
    return FaultTolerantSpMV(random_spd(256, 2500, seed=21), block_size=32)


@pytest.fixture
def b():
    return np.random.default_rng(21).standard_normal(256)


def one_shot(stage_name, mutate):
    """Tamper hook firing once on the first occurrence of a stage."""
    state = {"done": False}

    def hook(stage, data, work):
        if stage == stage_name and not state["done"]:
            mutate(data)
            state["done"] = True

    return hook


def test_clean_multiply_matches_plain(ft, b):
    result = ft.multiply(b)
    assert result.clean
    assert result.rounds == 0
    assert not result.exhausted
    np.testing.assert_array_equal(result.value, ft.matrix.matvec(b))


def test_single_result_error_corrected_exactly(ft, b):
    result = ft.multiply(b, tamper=one_shot("result", lambda d: d.__setitem__(40, d[40] + 3.0)))
    assert result.detected[0] == (1,)
    assert result.corrected_blocks == (1,)
    assert result.rounds == 1
    np.testing.assert_array_equal(result.value, ft.matrix.matvec(b))


def test_multi_block_errors_corrected(ft, b):
    def mutate(d):
        d[0] += 1.0
        d[100] -= 2.0
        d[255] *= 1.5

    result = ft.multiply(b, tamper=one_shot("result", mutate))
    assert result.detected[0] == (0, 3, 7)
    np.testing.assert_array_equal(result.value, ft.matrix.matvec(b))


def test_nan_result_corrected(ft, b):
    result = ft.multiply(b, tamper=one_shot("result", lambda d: d.__setitem__(7, np.nan)))
    assert result.corrected_blocks == (0,)
    np.testing.assert_array_equal(result.value, ft.matrix.matvec(b))


def test_corrupted_correction_caught_by_reverification(ft, b):
    """First correction is corrupted; round 2 repairs it."""
    state = {"result_done": False, "corrected_done": False}

    def hook(stage, data, work):
        if stage == "result" and not state["result_done"]:
            data[40] += 5.0
            state["result_done"] = True
        elif stage == "corrected" and not state["corrected_done"]:
            data[0] += 9.0
            state["corrected_done"] = True

    result = ft.multiply(b, tamper=hook)
    assert result.rounds == 2
    assert not result.exhausted
    np.testing.assert_array_equal(result.value, ft.matrix.matvec(b))


def test_corrupted_t1_resolved_by_refresh(ft, b):
    """A corrupted operand checksum triggers a spurious correction; the t1
    refresh in round 2 stops the loop with the correct value."""
    result = ft.multiply(b, tamper=one_shot("t1", lambda d: d.__setitem__(3, d[3] + 1.0)))
    assert not result.exhausted
    assert 3 in result.corrected_blocks
    np.testing.assert_array_equal(result.value, ft.matrix.matvec(b))


def test_persistent_tamper_exhausts_round_budget(ft, b):
    """An adversarial hook corrupting every correction forces give-up."""

    def hook(stage, data, work):
        if stage in ("result", "corrected"):
            data[0] = np.inf

    config = AbftConfig(block_size=32, max_correction_rounds=3)
    ft_small = FaultTolerantSpMV(ft.matrix, config=config)
    result = ft_small.multiply(b, tamper=hook)
    assert result.exhausted
    assert result.rounds == 3


def test_corrupted_beta_can_mask_errors(ft, b):
    """NaN beta makes thresholds NaN; comparisons are then false, so a real
    error slips through — documents the modeled detection vulnerability."""

    def hook(stage, data, work):
        if stage == "beta":
            data[0] = np.nan
        elif stage == "result":
            data[40] += 3.0

    result = ft.multiply(b, tamper=hook)
    assert result.detected[0] == ()
    assert result.value[40] != ft.matrix.matvec(b)[40]


def test_meter_charged_more_when_correcting(ft, b):
    clean = ft.multiply(b)
    faulty = ft.multiply(b, tamper=one_shot("result", lambda d: d.__setitem__(0, np.inf)))
    assert faulty.seconds > clean.seconds
    assert faulty.flops > clean.flops


def test_overhead_positive_but_bounded(ft, b):
    meter = ExecutionMeter()
    plain_spmv(ft.matrix, b, meter=meter)
    protected = ft.multiply(b)
    overhead = protected.seconds / meter.seconds - 1.0
    assert 0.0 < overhead < 3.0


def test_external_meter_accumulates(ft, b):
    meter = ExecutionMeter()
    r1 = ft.multiply(b, meter=meter)
    r2 = ft.multiply(b, meter=meter)
    assert meter.seconds == pytest.approx(r1.seconds + r2.seconds)


def test_conflicting_block_size_rejected(ft):
    with pytest.raises(ConfigurationError):
        FaultTolerantSpMV(ft.matrix, block_size=16, config=AbftConfig(block_size=32))


def test_default_config_used_when_unspecified(ft):
    assert FaultTolerantSpMV(ft.matrix).config.block_size == 32


def test_setup_cost_exposed(ft):
    assert ft.setup_cost.work == pytest.approx(3.0 * ft.matrix.nnz)


def test_plain_multiply_tamper_hook(ft, b):
    result = ft.plain_multiply(b, tamper=one_shot("result", lambda d: d.__setitem__(0, 99.0)))
    assert result[0] == 99.0  # unprotected: the corruption persists
