"""Unit tests for the experiment CLI (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nonsense"])


def test_parser_defaults():
    args = build_parser().parse_args(["fig5"])
    assert args.experiment == "fig5"
    assert not args.quick
    assert args.seed == 0
    assert args.output is None


def test_table1_quick(capsys):
    assert main(["table1", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "nos3" in out


def test_fig4_quick(capsys):
    assert main(["fig4", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    assert "minimum at block size" in out


def test_fig5_quick_writes_output(tmp_path, capsys):
    assert main(["fig5", "--quick", "--output", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    saved = (tmp_path / "fig5.txt").read_text()
    assert "dense check" in saved


def test_fig6_quick(capsys):
    assert main(["fig6", "--quick", "--trials", "2"]) == 0
    assert "Figure 6" in capsys.readouterr().out


def test_fig7_quick(capsys):
    assert main(["fig7", "--quick"]) == 0
    assert "Figure 7" in capsys.readouterr().out


def test_pcg_quick_with_custom_rates(capsys):
    assert main(["pcg", "--quick", "--rates", "1e-8", "--runs", "1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 8" in out and "Figure 9" in out


def test_ablations_quick(capsys):
    assert main(["ablations", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "bound family" in out
    assert "stream overlap" in out
    assert "redundant execution" in out
