"""Text rendering of paper-style tables and figure data.

Everything prints plain monospace tables so benchmark output can be diffed
against EXPERIMENTS.md and read in a terminal.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.sweeps import (
    BlockSizeSweep,
    CorrectionComparison,
    CoverageComparison,
    DetectionComparison,
    PcgCell,
)
from repro.schemes import DEFAULT_CORRECTION_SCHEMES


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def percent(value: float | None) -> str:
    """Format a ratio as a percentage ('-' for missing)."""
    if value is None:
        return "-"
    return f"{100.0 * value:.1f}%"


def render_block_size_sweep(sweep: BlockSizeSweep) -> str:
    """Figure 4: average detection overhead per block size."""
    rows = [
        (bs, percent(sweep.average(bs)))
        for bs in sweep.block_sizes
    ]
    best = sweep.best_block_size()
    table = format_table(
        ("block size", "avg detection overhead"),
        rows,
        title="Figure 4 — runtime overhead of SpMV error detection vs block size",
    )
    return f"{table}\nminimum at block size {best}"


def render_detection_comparison(comparison: DetectionComparison) -> str:
    """Figure 5: per-matrix detection overheads."""
    rows = [
        (name, percent(block), percent(dense), percent(1.0 - block / dense))
        for name, block, dense in zip(
            comparison.names, comparison.block, comparison.dense
        )
    ]
    table = format_table(
        ("matrix", "ours", "dense check", "reduction"),
        rows,
        title="Figure 5 — runtime overhead for error detection",
    )
    return f"{table}\naverage reduction vs dense check: {percent(comparison.average_reduction)}"


def render_correction_comparison(comparison: CorrectionComparison) -> str:
    """Figure 6: per-matrix detection+correction overheads."""
    ours_key, partial_key, complete_key = DEFAULT_CORRECTION_SCHEMES
    rows = []
    for index, name in enumerate(comparison.names):
        rows.append(
            (
                name,
                percent(comparison.timings[ours_key][index].overhead),
                percent(comparison.timings[partial_key][index].overhead),
                percent(comparison.timings[complete_key][index].overhead),
            )
        )
    table = format_table(
        ("matrix", "ours", "partial [30]", "complete [31]"),
        rows,
        title="Figure 6 — runtime overhead for error detection and correction",
    )
    partial = comparison.average_reduction_vs(partial_key)
    complete = comparison.average_reduction_vs(complete_key)
    return (
        f"{table}\naverage reduction vs partial recomputation: {percent(partial)}"
        f"\naverage reduction vs complete recomputation: {percent(complete)}"
    )


def render_coverage_comparison(comparison: CoverageComparison) -> str:
    """Figure 7: per-matrix F1 scores for every sigma."""
    sections = []
    for sigma in comparison.sigmas:
        rows = []
        for index, name in enumerate(comparison.names):
            ours = comparison.block[sigma][index].f1
            dense = comparison.dense[sigma][index].f1
            rows.append((name, f"{ours:.3f}", f"{dense:.3f}"))
        table = format_table(
            ("matrix", "ours F1", "dense-check F1"),
            rows,
            title=f"Figure 7 — error coverage at sigma = {sigma:g}",
        )
        avg_ours = comparison.average_f1("block", sigma)
        avg_dense = comparison.average_f1("dense", sigma)
        sections.append(
            f"{table}\naverage F1: ours {avg_ours:.3f}, dense {avg_dense:.3f}"
        )
    return "\n\n".join(sections)


def render_pcg_cells(
    cells: dict[tuple[str, float], PcgCell],
    schemes: Sequence[str],
    rates: Sequence[float],
) -> str:
    """Figures 8-9: overhead and success rate per (scheme, error rate)."""
    overhead_rows = []
    success_rows = []
    for rate in rates:
        overhead_rows.append(
            (f"{rate:g}",)
            + tuple(percent(cells[(s, rate)].mean_overhead) for s in schemes)
        )
        success_rows.append(
            (f"{rate:g}",)
            + tuple(percent(cells[(s, rate)].success_rate) for s in schemes)
        )
    overhead = format_table(
        ("error rate",) + tuple(schemes),
        overhead_rows,
        title="Figure 8 — PCG runtime overhead vs error rate",
    )
    success = format_table(
        ("error rate",) + tuple(schemes),
        success_rows,
        title="Figure 9 — successful PCG executions vs error rate",
    )
    return f"{overhead}\n\n{success}"
