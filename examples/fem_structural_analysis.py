"""Fault-tolerant structural-mechanics solve (the paper's motivating domain).

Discretizes a 2-D Laplace problem (the canonical stand-in for the FEM
stiffness systems of Section III-E / [16]), then solves it with the
Preconditioned Conjugate Gradient method under increasingly hostile
transient-error rates, comparing all four fault-tolerance strategies of the
paper's case study:

* unprotected PCG,
* the proposed block-ABFT-protected PCG,
* dense check + bisection partial recomputation [30],
* dense check + checkpoint/rollback (20-iteration interval).

Run:  python examples/fem_structural_analysis.py
"""

import numpy as np

from repro.solvers import run_pcg
from repro.sparse import poisson2d


def main() -> None:
    # 40x40 grid -> 1600 unknowns; SPD 5-point stencil stiffness matrix.
    matrix = poisson2d(40)
    rng = np.random.default_rng(11)
    displacement_true = rng.standard_normal(matrix.n_rows)
    load = matrix.matvec(displacement_true)
    print(f"FEM system: n={matrix.n_rows}, nnz={matrix.nnz}")

    schemes = ("unprotected", "ours", "partial", "checkpoint")
    rates = (0.0, 1e-7, 1e-6, 1e-5)
    runs_per_cell = 5

    baseline = run_pcg(matrix, load, scheme="unprotected", error_rate=0.0, seed=0)
    print(
        f"fault-free reference: {baseline.iterations} iterations, "
        f"simulated {baseline.seconds * 1e3:.2f} ms\n"
    )

    header = f"{'scheme':14s}" + "".join(f"  lam={rate:<8g}" for rate in rates)
    print(header)
    print("-" * len(header))
    for scheme in schemes:
        cells = []
        for rate in rates:
            correct = 0
            seconds = []
            for seed in range(runs_per_cell):
                result = run_pcg(
                    matrix, load, scheme=scheme, error_rate=rate, seed=seed
                )
                correct += result.correct
                if result.correct:
                    seconds.append(result.seconds)
            if seconds:
                overhead = np.mean(seconds) / baseline.seconds - 1.0
                cells.append(f"{correct}/{runs_per_cell} ({overhead:+.0%})")
            else:
                cells.append(f"{correct}/{runs_per_cell} (-)")
        print(f"{scheme:14s}" + "".join(f"  {cell:12s}" for cell in cells))

    print(
        "\ncells show: correct solves / attempts (runtime overhead vs the"
        " fault-free unprotected solve, successful runs only)"
    )


if __name__ == "__main__":
    main()
