"""The fault-tolerant SpMV driver (the paper's Figure 1, end to end).

:class:`FaultTolerantSpMV` executes one protected multiply: the SpMV and
the operand checksum run as parallel streams, detection follows, and any
flagged block is corrected by partial recomputation and re-verified.
Numerics run eagerly (NumPy); simulated cost is charged per round to an
:class:`repro.machine.ExecutionMeter`; fault campaigns corrupt intermediate
data through a *tamper hook* invoked after every numeric stage.

Beyond the paper's description, the driver handles two realities of
injections into the detection path itself:

* corrections are re-verified (a corrupted correction is caught in the
  next round), and
* a block that stays flagged after its first recomputation gets its
  operand checksum ``t1_k`` refreshed — otherwise a corrupted ``t1`` would
  trigger corrections forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Set, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotations only)
    from repro.perf.plan import ProtectedPlan

from repro.core.blocking import BlockPartition
from repro.core.config import AbftConfig
from repro.core.corrector import TamperHook, correct_blocks
from repro.core.detector import BlockAbftDetector
from repro.errors import ConfigurationError
from repro.machine import (
    ExecutionMeter,
    KernelCost,
    Machine,
    TaskGraph,
    blocked_checksum_cost,
    log2ceil,
    spmv_cost,
)
from repro.obs import DEFAULT_FRACTION_BUCKETS, Telemetry
from repro.schemes.result import ProtectedSpmvResult
from repro.sparse.csr import CsrMatrix


def plain_spmv(
    matrix: CsrMatrix,
    b: np.ndarray,
    meter: Optional[ExecutionMeter] = None,
    tamper: Optional[TamperHook] = None,
) -> np.ndarray:
    """Unprotected SpMV: the baseline all overheads are measured against."""
    meter = meter if meter is not None else ExecutionMeter()
    graph = TaskGraph()
    cost = spmv_cost(matrix.nnz, int(matrix.row_lengths().max(initial=1)))
    graph.add("spmv", cost.work, cost.span)
    meter.run_graph(graph)
    r = matrix.matvec(b)
    if tamper is not None:
        tamper("result", r, cost.work)
    return r


#: Compatibility alias — protected multiplies now return the unified
#: result type shared by every scheme in :mod:`repro.schemes`.
SpmvResult = ProtectedSpmvResult


def block_result(
    partition: BlockPartition,
    value: np.ndarray,
    detected: Tuple[Tuple[int, ...], ...],
    corrected_blocks: Tuple[int, ...],
    rounds: int,
    seconds: float,
    flops: float,
    exhausted: bool,
) -> ProtectedSpmvResult:
    """Build the unified result from block-granular detection state.

    ``detected`` is the per-check tuple of flagged block indices; check
    ``i`` (for ``i < rounds``) fed correction round ``i + 1``, so the
    row-range ``corrections`` are exactly the bounds of those blocks, in
    recomputation order.
    """
    return ProtectedSpmvResult(
        value=value,
        detections=tuple(bool(blocks) for blocks in detected),
        corrections=tuple(
            partition.bounds(int(block))
            for index in range(rounds)
            for block in detected[index]
        ),
        rounds=rounds,
        seconds=seconds,
        flops=flops,
        exhausted=exhausted,
        detected_blocks=detected,
        corrected_blocks=corrected_blocks,
    )


class FaultTolerantSpMV:
    """Reusable protected-SpMV operator for one input matrix.

    Args:
        matrix: the sparse input matrix ``A``.
        block_size: shorthand for ``AbftConfig(block_size=...)``.
        config: full configuration; mutually exclusive with ``block_size``.
        machine: simulated device (defaults to the calibrated K80 model).
        telemetry: :mod:`repro.obs` selection — a Telemetry instance or
            exporter name; None resolves ``config.telemetry`` (with the
            ``REPRO_OBS`` environment override).
        bound_override: optional object exposing ``thresholds(beta, blocks)``
            replacing the analytical detection bound (e.g. an
            :class:`~repro.analysis.empirical.EmpiricalBound`).
        dtype: dtype-policy selection (name or
            :class:`~repro.core.dtypes.DtypePolicy`); None resolves
            ``config.dtype`` with the ``REPRO_DTYPE`` environment
            override.  The policy feeds the detector's epsilon model and
            keys the cached execution plan.
    """

    #: Registry name in :mod:`repro.schemes` (the paper's scheme).
    name = "abft"

    def __init__(
        self,
        matrix: CsrMatrix,
        block_size: Optional[int] = None,
        config: Optional[AbftConfig] = None,
        machine: Optional[Machine] = None,
        telemetry: object = None,
        bound_override: object = None,
        dtype: object = None,
    ) -> None:
        if config is not None and block_size is not None and config.block_size != block_size:
            raise ConfigurationError(
                f"conflicting block sizes: block_size={block_size} vs "
                f"config.block_size={config.block_size}"
            )
        if config is None:
            config = AbftConfig(block_size=block_size) if block_size else AbftConfig()
        self.config = config
        self.machine = machine or Machine()
        self.detector = BlockAbftDetector(
            matrix, config, bound_override=bound_override, telemetry=telemetry,
            dtype=dtype,
        )
        self._plan: Optional["ProtectedPlan"] = None

    @property
    def telemetry(self) -> Telemetry:
        """The telemetry stream shared with the detector."""
        return self.detector.telemetry

    @property
    def dtype_policy(self):
        """The resolved dtype policy (shared with the detector)."""
        return self.detector.dtype_policy

    @property
    def matrix(self) -> CsrMatrix:
        return self.detector.matrix

    @property
    def setup_cost(self) -> KernelCost:
        """One-time preprocessing cost (checksum matrix construction)."""
        return self.detector.setup_cost

    # ------------------------------------------------------------------
    # Protected multiply
    # ------------------------------------------------------------------
    def multiply(
        self,
        b: np.ndarray,
        tamper: Optional[TamperHook] = None,
        meter: Optional[ExecutionMeter] = None,
    ) -> SpmvResult:
        """Execute one fault-tolerant SpMV.

        Args:
            b: operand vector.
            tamper: optional fault hook ``tamper(stage, data, work)`` called
                after each numeric stage with stages ``"result"``, ``"t1"``,
                ``"beta"``, ``"t2"``, ``"corrected"``; campaigns corrupt the
                passed arrays in place.
            meter: execution meter to charge; a fresh one is used if omitted.
        """
        detector = self.detector
        matrix = detector.matrix
        telemetry = detector.telemetry
        meter = meter if meter is not None else ExecutionMeter(machine=self.machine)
        start_seconds, start_flops = meter.snapshot()

        with telemetry.span("abft.multiply", rows=matrix.n_rows, nnz=matrix.nnz):
            # --- Figure 1 steps 1-4: SpMV + detection -------------------
            meter.run_graph(detector.detection_graph())

            with telemetry.span("abft.detect"):
                r = matrix.matvec(b)
                self._tamper(tamper, "result", r, 2.0 * matrix.nnz)
                t1 = detector.operand_checksums(b)
                self._tamper(tamper, "t1", t1, 2.0 * detector.checksum.nnz)
                beta_box = np.array([detector.operand_norm(b)])
                self._tamper(tamper, "beta", beta_box, 2.0 * matrix.n_cols)
                beta = float(beta_box[0])
                t2 = detector.result_checksums(r)
                self._tamper(tamper, "t2", t2, 2.0 * matrix.n_rows)
                report = detector.compare(t1, t2, beta)

            detected = [tuple(int(x) for x in report.flagged)]
            corrected: Set[int] = set()
            rounds, exhausted = self._correction_rounds(
                b, r, t1, report.beta, report.flagged, tamper, meter,
                detected=detected, corrected=corrected,
            )

        seconds, flops = meter.snapshot()
        return block_result(
            detector.partition,
            value=r,
            detected=tuple(detected),
            corrected_blocks=tuple(sorted(corrected)),
            rounds=rounds,
            seconds=seconds - start_seconds,
            flops=flops - start_flops,
            exhausted=exhausted,
        )

    def _correction_rounds(
        self,
        b: np.ndarray,
        r: np.ndarray,
        t1: np.ndarray,
        beta: float,
        flagged: np.ndarray,
        tamper: Optional[TamperHook],
        meter: ExecutionMeter,
        *,
        detected: List[Tuple[int, ...]],
        corrected: Set[int],
        rounds: int = 0,
    ) -> Tuple[int, bool]:
        """Figure 1 step 5: correct + re-verify until clean.

        Shared by :meth:`multiply` and the planned execution path
        (:class:`repro.perf.ProtectedPlan`): runs correction rounds until
        ``flagged`` is empty or the round budget runs out, mutating
        ``detected``/``corrected`` in place and returning the final
        ``(rounds, exhausted)`` pair.  ``rounds`` seeds the round counter
        so a caller that already performed in-shard corrections continues
        the budget rather than restarting it.
        """
        detector = self.detector
        matrix = detector.matrix
        telemetry = detector.telemetry
        exhausted = False
        while flagged.size:
            if rounds >= self.config.max_correction_rounds:
                exhausted = True
                break
            rounds += 1
            if telemetry.enabled:
                telemetry.count("abft.corrections")
                telemetry.count("abft.blocks_recomputed", float(flagged.size))
                telemetry.observe(
                    "abft.block_recompute_fraction",
                    flagged.size / detector.n_blocks,
                    buckets=DEFAULT_FRACTION_BUCKETS,
                )
            with telemetry.span(
                "abft.correct", round=rounds, blocks=int(flagged.size)
            ):
                outcome = correct_blocks(
                    matrix, detector.partition, b, r, flagged, tamper,
                    kernel=detector.kernels,
                )
                corrected.update(int(x) for x in flagged)

                refresh = rounds >= 2
                refreshed_nnz = 0
                if refresh:
                    refreshed_nnz = self._refresh_operand_checksums(
                        b, t1, flagged, tamper
                    )

                recheck = detector.checksum.result_checksums_for_blocks(
                    r, flagged, kernel=detector.kernels
                )
                self._tamper(tamper, "t2", recheck, 2.0 * outcome.rows_recomputed)
                report = detector.compare(t1[flagged], recheck, beta, blocks=flagged)

            meter.run_graph(
                self._correction_graph(
                    rounds, outcome.nnz_recomputed, outcome.rows_recomputed,
                    len(flagged), refreshed_nnz,
                )
            )
            flagged = report.flagged
            detected.append(tuple(int(x) for x in flagged))
        return rounds, exhausted

    def planned(
        self,
        n_shards: Optional[int] = None,
        sparse_format: Optional[str] = None,
    ) -> "ProtectedPlan":
        """The cached execution plan for this operator (see
        :class:`repro.perf.ProtectedPlan`).

        Building a plan precomputes shard boundaries and preallocates all
        detection buffers; steady-state callers (e.g. the PCG loop) call
        this every iteration and hit the cache after the first build — a
        hit bumps the ``plan.cache_hits`` counter when telemetry is on.

        Args:
            n_shards: shard count; None derives it from the selected
                execution backend — the worker count for ``"parallel"``
                kernels or the ``"processes"`` backend, 1 otherwise.
            sparse_format: explicit storage format request forwarded to
                :class:`~repro.perf.plan.ProtectedPlan` (beats
                ``REPRO_FORMAT`` and ``AbftConfig.sparse_format``).  The
                cache is keyed on the *resolved request*, so switching
                formats rebuilds the plan.
        """
        from repro.kernels.parallel import ParallelKernels, default_workers
        from repro.perf.backends import resolve_backend_name
        from repro.perf.plan import ProtectedPlan
        from repro.sparse.formats import resolve_format_name

        if n_shards is None:
            kernels = self.detector.kernels
            inner = getattr(kernels, "inner", kernels)
            if isinstance(inner, ParallelKernels):
                n_shards = inner.n_workers
            else:
                backend = resolve_backend_name(
                    getattr(self.config, "parallel", None)
                )
                n_shards = default_workers() if backend == "processes" else 1
        requested = resolve_format_name(
            getattr(self.config, "sparse_format", None), explicit=sparse_format
        )
        plan = self._plan
        if (
            plan is not None
            and plan.n_shards == n_shards
            and plan.format_choice.requested == requested
            and plan.dtype_policy.name == self.dtype_policy.name
            and not plan.backend.closed
        ):
            if self.telemetry.enabled:
                self.telemetry.count("plan.cache_hits")
            return plan
        plan = ProtectedPlan(self, n_shards=n_shards, sparse_format=requested)
        self._plan = plan
        return plan

    def plain_multiply(
        self,
        b: np.ndarray,
        tamper: Optional[TamperHook] = None,
        meter: Optional[ExecutionMeter] = None,
    ) -> np.ndarray:
        """Unprotected SpMV on the same machine (overhead baseline)."""
        meter = meter if meter is not None else ExecutionMeter(machine=self.machine)
        return plain_spmv(self.matrix, b, meter=meter, tamper=tamper)

    def detection_graph(self) -> TaskGraph:
        """Task graph of one multiply's detection phase (cost model)."""
        return self.detector.detection_graph()

    def verdict(self, b: np.ndarray, r: np.ndarray) -> Tuple[Tuple[int, int], ...]:
        """Row ranges the detector implicates for a given ``(b, r)`` pair.

        Runs the block check without correcting; each flagged block maps to
        its row range, so coverage campaigns can score all schemes on the
        same range-granular confusion counts.
        """
        report = self.detector.detect(b, r)
        partition = self.detector.partition
        return tuple(partition.bounds(int(block)) for block in report.flagged)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _tamper(
        tamper: Optional[TamperHook], stage: str, data: np.ndarray, work: float
    ) -> None:
        if tamper is not None:
            tamper(stage, data, work)

    def _refresh_operand_checksums(
        self,
        b: np.ndarray,
        t1: np.ndarray,
        flagged: np.ndarray,
        tamper: Optional[TamperHook],
    ) -> int:
        """Recompute t1 entries of stubborn blocks; returns nnz touched."""
        with self.detector.telemetry.span("checksum.refresh", blocks=int(flagged.size)):
            fresh, nnz = self.detector.kernels.row_checksums(
                self.detector.checksum.matrix, flagged, b
            )
            self._tamper(tamper, "t1", fresh, 2.0 * nnz)
            t1[flagged] = fresh
        return nnz

    def _correction_graph(
        self,
        round_index: int,
        nnz_recomputed: int,
        rows_recomputed: int,
        n_flagged: int,
        refreshed_nnz: int,
    ) -> TaskGraph:
        """Cost of one correction round (partial SpMV + re-verification)."""
        matrix = self.matrix
        max_row = int(matrix.row_lengths().max(initial=1))
        graph = TaskGraph()
        graph.add("recompute", 2.0 * nnz_recomputed, log2ceil(max_row))
        recheck_deps = ["recompute"]
        if refreshed_nnz:
            graph.add("t1-refresh", 2.0 * refreshed_nnz, log2ceil(max_row))
            recheck_deps.append("t1-refresh")
        recheck = blocked_checksum_cost(
            rows_recomputed, self.config.block_size, n_flagged
        )
        graph.add("recheck", recheck.work, recheck.span, deps=recheck_deps)
        return graph
