"""Property-based tests for the triangular-solve substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.triangular import ProtectedTriangularSolve, forward_substitution
from repro.sparse import CooMatrix


@st.composite
def lower_systems(draw):
    """Random well-conditioned sparse lower-triangular systems."""
    n = draw(st.integers(2, 40))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    density = draw(st.floats(0.05, 0.6))
    dense = np.zeros((n, n))
    mask = rng.random((n, n)) < density
    dense[np.tril_indices(n, -1)] = 0.0
    lower_mask = np.tril(mask, -1)
    dense[lower_mask] = rng.standard_normal(int(lower_mask.sum()))
    # Dominant diagonal keeps the solve well conditioned.
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1.0)
    matrix = CooMatrix.from_dense(dense).to_csr()
    x_true = rng.standard_normal(n)
    return matrix, x_true


@settings(max_examples=60, deadline=None)
@given(lower_systems())
def test_forward_substitution_inverts_matvec(system):
    lower, x_true = system
    rhs = lower.matvec(x_true)
    x = np.empty(lower.n_rows)
    forward_substitution(lower, rhs, x)
    np.testing.assert_allclose(x, x_true, rtol=1e-8, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(lower_systems(), st.integers(1, 16))
def test_protected_solve_clean_and_correct(system, block_size):
    lower, x_true = system
    scheme = ProtectedTriangularSolve(lower, block_size=block_size)
    result = scheme.solve(lower.matvec(x_true))
    assert result.clean
    np.testing.assert_allclose(result.value, x_true, rtol=1e-8, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(lower_systems(), st.integers(0, 39), st.floats(0.5, 100.0))
def test_protected_solve_repairs_any_single_strike(system, index, magnitude):
    lower, x_true = system
    index = index % lower.n_rows
    scheme = ProtectedTriangularSolve(lower, block_size=8)
    state = {"armed": True}

    def tamper(stage, data, work):
        if stage == "result" and state["armed"]:
            data[index] += magnitude * (1.0 + abs(data[index]))
            state["armed"] = False

    result = scheme.solve(lower.matvec(x_true), tamper=tamper)
    assert not result.clean
    assert not result.exhausted
    np.testing.assert_allclose(result.value, x_true, rtol=1e-8, atol=1e-10)
