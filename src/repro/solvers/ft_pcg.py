"""Fault-tolerant PCG drivers — the paper's Section VI case study.

One PCG loop, differing only in how the SpMV ``q = A p`` is protected.
The scheme is selected by name through the :mod:`repro.schemes` registry
(any registered scheme works, e.g. ``"abft"`` — the proposed block-ABFT
SpMV of the paper — ``"bisection"``, or ``"checkpoint"``, whose detections
roll the solver back to the last snapshot taken every 20 iterations into
reliable storage), plus three solver-level cases:

* ``"unprotected"`` — plain SpMV; errors propagate freely.

Two extension schemes go beyond the paper:

* ``"dual"`` — the dual-checksum SpMV of :mod:`repro.core.algebraic`
  (single-row algebraic repair with block-recompute fallback);
* ``"hybrid"`` — the proposed ABFT multiply backed by checkpoints: partial
  recomputation handles everything correctable, and only an *uncorrectable*
  multiply (correction rounds exhausted) triggers a rollback.  This
  composes the paper's scheme with classic rollback as a safety net.

Error injection follows the paper: an exponential process with rate λ per
arithmetic operation drives bit-flip bursts into SpMV result elements *and*
into the operations of the detection mechanisms themselves.  Runtime is
simulated machine time; success means converging to a *correct* solution
within ``10 * N`` executed iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.checkpoint import DEFAULT_CHECKPOINT_INTERVAL, CheckpointStore
from repro.core.algebraic import DualChecksumSpMV
from repro.core.config import AbftConfig
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.process import ErrorProcess
from repro.kernels import DEFAULT_KERNEL, available_kernels
from repro.machine import (
    ExecutionMeter,
    Machine,
    TaskGraph,
    axpy_cost,
    dot_cost,
    norm_cost,
    spmv_cost,
)
from repro.obs import resolve_telemetry
from repro.schemes import BUILTIN_SCHEMES, canonical_scheme_name, make_scheme
from repro.solvers.pcg import DEFAULT_TOLERANCE, MAX_ITERATION_FACTOR
from repro.solvers.preconditioners import make_preconditioner
from repro.sparse.csr import CsrMatrix

#: Solver-level cases handled here rather than by a registered scheme.
SOLVER_SCHEMES = ("unprotected", "dual", "hybrid")

#: Scheme identifiers accepted by :func:`run_pcg` (registry aliases such as
#: ``"ours"`` are accepted too; any custom registered scheme also works).
SCHEMES = SOLVER_SCHEMES + BUILTIN_SCHEMES


@dataclass(frozen=True)
class FtPcgOptions:
    """Case-study parameters (defaults follow the paper's Section VI)."""

    tol: float = DEFAULT_TOLERANCE
    max_iteration_factor: int = MAX_ITERATION_FACTOR
    checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL
    block_size: int = 32
    preconditioner: str = "jacobi"
    max_correction_rounds: int = 8
    kernel: str = DEFAULT_KERNEL
    #: Storage format for the planned protected multiply ("csr", "bsr",
    #: "ell" or "auto"); None keeps the CSR default.  Resolution follows
    #: :func:`repro.sparse.formats.resolve_format_name` (REPRO_FORMAT
    #: overrides configured names).
    sparse_format: Optional[str] = None

    def __post_init__(self) -> None:
        if self.tol <= 0:
            raise ConfigurationError(f"tol must be positive, got {self.tol}")
        if self.max_iteration_factor < 1:
            raise ConfigurationError(
                f"max_iteration_factor must be >= 1, got {self.max_iteration_factor}"
            )
        if self.checkpoint_interval < 1:
            raise ConfigurationError(
                f"checkpoint_interval must be >= 1, got {self.checkpoint_interval}"
            )
        if self.kernel not in available_kernels():
            raise ConfigurationError(
                f"unknown kernel {self.kernel!r}; expected one of {available_kernels()}"
            )
        if self.sparse_format is not None:
            from repro.sparse.formats import canonical_format_name

            canonical_format_name(self.sparse_format)


@dataclass(frozen=True)
class FtPcgResult:
    """Outcome of one fault-injected PCG execution.

    Attributes:
        x: final iterate.
        iterations: iterations *executed* (rolled-back work included).
        converged: residual criterion met within the cap.
        correct: converged *and* the recomputed true residual confirms the
            solution (the paper's success criterion).
        residual_norm: true relative residual of the returned iterate.
        seconds / flops: simulated cost of the whole solve.
        injections: errors injected by the process.
        detections: multiplies in which the scheme flagged an error.
        corrections: correction actions (block/range recomputations or
            full recomputes).
        rollbacks: checkpoint restorations (checkpoint scheme only).
        checkpoint_saves: snapshots taken (checkpoint scheme only).
    """

    x: np.ndarray
    iterations: int
    converged: bool
    correct: bool
    residual_norm: float
    seconds: float
    flops: float
    injections: int
    detections: int
    corrections: int
    rollbacks: int
    checkpoint_saves: int


class _PcgState:
    """Mutable solver state, snapshot-able for checkpoint/rollback."""

    __slots__ = ("x", "r", "p", "rz")

    def __init__(self, x: np.ndarray, r: np.ndarray, p: np.ndarray, rz: float) -> None:
        self.x, self.r, self.p, self.rz = x, r, p, rz


def run_pcg(
    matrix: CsrMatrix,
    b: np.ndarray,
    scheme: str = "ours",
    error_rate: float = 0.0,
    seed: int = 0,
    machine: Optional[Machine] = None,
    options: Optional[FtPcgOptions] = None,
    telemetry: object = None,
) -> FtPcgResult:
    """Execute one (possibly fault-injected) PCG solve.

    Args:
        matrix: SPD system matrix.
        b: right-hand side.
        scheme: one of :data:`SCHEMES`.
        error_rate: λ, errors per arithmetic operation (0 = fault-free).
        seed: seeds both the injector and the random initial guess (the
            paper uses a random ``x0``).
        machine: simulated device.
        options: case-study parameters.
        telemetry: :mod:`repro.obs` selection — a Telemetry instance or
            exporter name (``REPRO_OBS`` env override applies to names;
            default off).  The solve is traced as a ``pcg.solve`` span
            with one ``pcg.iteration`` span per executed iteration, and
            the injector/protected-multiply share the same stream.

    Returns:
        The :class:`FtPcgResult` of the run.
    """
    if scheme in SOLVER_SCHEMES:
        canonical = scheme
    else:
        # Registry lookup resolves aliases and rejects unknown names.
        canonical = canonical_scheme_name(scheme)
    options = options or FtPcgOptions()
    machine = machine or Machine()
    meter = ExecutionMeter(machine=machine)
    n = matrix.n_rows
    telemetry = resolve_telemetry(telemetry)

    injector = FaultInjector.seeded(seed, telemetry=telemetry)
    process = ErrorProcess(error_rate, injector.rng)

    def tamper(stage: str, data: np.ndarray, work: float) -> None:
        for _ in range(process.events_in(work)):
            if data.size:
                injector.corrupt_random_element(data, target=stage)

    preconditioner = make_preconditioner(options.preconditioner, matrix)
    max_iterations = options.max_iteration_factor * n

    # Protected multiply, per scheme.  Each returns
    # (q, detected_flag, unrecoverable_flag, corrections_performed).
    detections = 0
    corrections = 0
    scheme_store: Optional[CheckpointStore] = None
    config = AbftConfig(
        block_size=options.block_size,
        max_correction_rounds=options.max_correction_rounds,
        kernel=options.kernel,
        sparse_format=options.sparse_format,
    )
    if canonical in ("abft", "hybrid"):
        operator = make_scheme(
            "abft", matrix, config=config, machine=machine, telemetry=telemetry
        )
        # The loop re-executes the same protected multiply every iteration:
        # the planned path reuses shard schedules and buffers instead of
        # reallocating per call.  A fault-free run passes no tamper hook at
        # all (the hook would be a no-op), which also lets the parallel
        # kernel set use its fused threaded pipeline.
        plan = operator.planned()
        tamper_hook = tamper if error_rate > 0 else None

        def multiply(p_vec: np.ndarray) -> tuple[np.ndarray, bool, bool, int]:
            result = plan.multiply(p_vec, tamper=tamper_hook, meter=meter)
            return result.value, not result.clean, result.exhausted, int(
                result.rounds > 0
            )

    elif canonical == "dual":
        operator = DualChecksumSpMV(
            matrix,
            block_size=options.block_size,
            machine=machine,
            max_rounds=options.max_correction_rounds,
            kernel=options.kernel,
        )

        def multiply(p_vec: np.ndarray) -> tuple[np.ndarray, bool, bool, int]:
            result = operator.multiply(p_vec, tamper=tamper, meter=meter)
            detected = bool(result.detected)
            return result.value, detected, result.exhausted, int(detected)

    elif canonical == "unprotected":
        plain_cost = spmv_cost(matrix.nnz, int(matrix.row_lengths().max(initial=1)))

        def multiply(p_vec: np.ndarray) -> tuple[np.ndarray, bool, bool, int]:
            meter.run_graph(_single_task_graph("spmv", plain_cost))
            q = matrix.matvec(p_vec)
            tamper("result", q, plain_cost.work)
            return q, False, False, 0

    else:  # any registered scheme (checkpoint, bisection, dense_check, ...)
        scheme_obj = make_scheme(
            canonical, matrix, config=config, machine=machine, telemetry=telemetry
        )
        # The checkpoint scheme carries the snapshot store the solver rolls
        # back to; schemes that correct in place have none.
        scheme_store = getattr(scheme_obj, "store", None)

        def multiply(p_vec: np.ndarray) -> tuple[np.ndarray, bool, bool, int]:
            result = scheme_obj.multiply(p_vec, tamper=tamper, meter=meter)
            return result.value, not result.clean, result.exhausted, int(
                result.rounds > 0
            )

    # --- initial state (random x0, per the paper) -----------------------
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal(n)
    b_norm = float(np.linalg.norm(b))
    # reprolint: disable=ABFT003 -- exact-zero RHS guard (cf. plain PCG): the
    # fallback only replaces a norm that is identically zero
    if b_norm == 0.0:
        b_norm = 1.0

    with telemetry.span("pcg.solve", scheme=canonical, n=n, seed=seed):
        with telemetry.span("pcg.setup"):
            q0, detected0, _, _ = multiply(x)
        detections += int(detected0)
        # Corrupted values may already be in q0 (undetected errors); let them
        # propagate silently — the iteration / success accounting handles them.
        with np.errstate(invalid="ignore", over="ignore"):
            r = b - q0
            z = preconditioner.apply(r)
            p = z.copy()
            rz = float(np.dot(r, z))
        state = _PcgState(x, r, p, rz)

        store = CheckpointStore() if canonical == "hybrid" else scheme_store
        rollbacks = 0
        if store is not None:
            meter.run_kernel(store.save(0, {"x": x, "r": r, "p": p}, {"rz": rz}))

        update_graph_template = _iteration_update_costs(matrix, preconditioner)

        converged = False
        iterations = 0
        while iterations < max_iterations:
            iterations += 1
            with telemetry.span("pcg.iteration", i=iterations):
                if telemetry.enabled:
                    telemetry.count("pcg.iterations")
                q, detected, unrecoverable, corrected = multiply(state.p)
                detections += int(detected)
                corrections += corrected

                # Checkpoint: roll back on *any* detection (it cannot
                # correct).  Hybrid: roll back only when in-place
                # correction gave up.
                roll_back = unrecoverable if canonical == "hybrid" else detected
                if store is not None and roll_back:
                    # Discard the iteration, restore the snapshot.
                    _, arrays, scalars, cost = store.restore()
                    meter.run_kernel(cost)
                    state = _PcgState(
                        arrays["x"], arrays["r"], arrays["p"], scalars["rz"]
                    )
                    rollbacks += 1
                    if telemetry.enabled:
                        telemetry.count("pcg.rollbacks")
                    continue

                with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
                    pq = float(np.dot(state.p, q))
                    # reprolint: disable=ABFT003 -- CG breakdown guard: only
                    # exactly zero curvature is fatal; noisy small pq still
                    # iterates
                    if pq == 0.0:
                        break  # exact breakdown
                    alpha = state.rz / pq
                    state.x = state.x + alpha * state.p
                    state.r = state.r - alpha * q
                    relative = float(np.linalg.norm(state.r)) / b_norm
                    meter.run_graph(_clone_graph(update_graph_template))
                    if telemetry.enabled:
                        telemetry.gauge("pcg.residual_relative", relative, i=iterations)
                    if relative < options.tol:
                        converged = True
                        break
                    if not np.isfinite(relative):
                        # The state is poisoned (inf/NaN reached the
                        # iterate).  An unprotected run can never recover;
                        # protected runs only land here if an error evaded
                        # detection entirely.
                        break
                    z = preconditioner.apply(state.r)
                    rz_next = float(np.dot(state.r, z))
                    beta = rz_next / state.rz
                    state.p = z + beta * state.p
                    state.rz = rz_next

                if store is not None and iterations % options.checkpoint_interval == 0:
                    meter.run_kernel(
                        store.save(
                            iterations,
                            {"x": state.x, "r": state.r, "p": state.p},
                            {"rz": state.rz},
                        )
                    )

    with np.errstate(invalid="ignore", over="ignore"):
        true_residual = float(np.linalg.norm(b - matrix.matvec(state.x))) / b_norm
    correct = converged and np.isfinite(true_residual) and true_residual < 10 * options.tol
    return FtPcgResult(
        x=state.x,
        iterations=iterations,
        converged=converged,
        correct=bool(correct),
        residual_norm=true_residual,
        seconds=meter.seconds,
        flops=meter.flops,
        injections=len(injector.log),
        detections=detections,
        corrections=corrections,
        rollbacks=rollbacks,
        checkpoint_saves=store.saves if store is not None else 0,
    )


def _single_task_graph(name: str, cost) -> TaskGraph:
    graph = TaskGraph()
    graph.add(name, cost.work, cost.span)
    return graph


def _iteration_update_costs(matrix: CsrMatrix, preconditioner) -> TaskGraph:
    """Per-iteration solver-update kernels (everything except the SpMV).

    Two inner products, the convergence-check norm, three AXPY-class
    updates and one preconditioner application.  These are charged but not
    corrupted — the paper injects into the SpMV and the detection
    operations.
    """
    n = matrix.n_rows
    graph = TaskGraph()
    pq = dot_cost(n)
    graph.add("pq", pq.work, pq.span)
    upd_x = axpy_cost(n)
    graph.add("update-x", upd_x.work, upd_x.span, deps=["pq"])
    upd_r = axpy_cost(n)
    graph.add("update-r", upd_r.work, upd_r.span, deps=["pq"])
    conv = norm_cost(n)
    graph.add("residual-norm", conv.work, conv.span, deps=["update-r"])
    prec = preconditioner.apply_cost
    graph.add("precondition", prec.work, prec.span, deps=["update-r"])
    rz = dot_cost(n)
    graph.add("rz", rz.work, rz.span, deps=["precondition"])
    upd_p = axpy_cost(n)
    graph.add("update-p", upd_p.work, upd_p.span, deps=["rz"])
    return graph


def _clone_graph(template: TaskGraph) -> TaskGraph:
    """Fresh graph with the same tasks (graphs are single-use schedules)."""
    clone = TaskGraph()
    for task in template.tasks():
        clone.add_task(task)
    return clone
