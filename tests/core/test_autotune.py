"""Unit tests for automatic block-size selection."""

import pytest

from repro.core import FaultTolerantSpMV
from repro.core.autotune import DEFAULT_CANDIDATES, choose_block_size
from repro.errors import ConfigurationError
from repro.sparse import suite_matrix


@pytest.fixture(scope="module")
def matrix():
    return suite_matrix("bcsstk13")


def test_returns_candidate(matrix):
    result = choose_block_size(matrix)
    assert result.block_size in DEFAULT_CANDIDATES
    assert len(result.overheads) == len(DEFAULT_CANDIDATES)


def test_detection_only_matches_figure4_region(matrix):
    result = choose_block_size(matrix, error_probability=0.0)
    assert 16 <= result.block_size <= 128


def test_minimum_is_consistent(matrix):
    result = choose_block_size(matrix)
    best_overhead = result.overheads[result.candidates.index(result.block_size)]
    assert best_overhead == min(result.overheads)


def test_errors_shift_optimum_toward_smaller_blocks(matrix):
    clean = choose_block_size(matrix, error_probability=0.0)
    noisy = choose_block_size(matrix, error_probability=1.0)
    assert noisy.block_size <= clean.block_size


def test_chosen_size_feeds_the_scheme(matrix):
    import numpy as np

    result = choose_block_size(matrix)
    ft = FaultTolerantSpMV(matrix, block_size=result.block_size)
    b = np.random.default_rng(0).standard_normal(matrix.n_cols)
    assert ft.multiply(b).clean


def test_custom_candidates(matrix):
    result = choose_block_size(matrix, candidates=(8, 64))
    assert result.block_size in (8, 64)
    assert result.candidates == (8, 64)


def test_validation(matrix):
    with pytest.raises(ConfigurationError):
        choose_block_size(matrix, candidates=())
    with pytest.raises(ConfigurationError):
        choose_block_size(matrix, error_probability=1.5)


def test_overheads_positive(matrix):
    result = choose_block_size(matrix)
    assert all(overhead > 0 for overhead in result.overheads)
