"""Statistical helpers for campaign results.

The paper reports point estimates over 100 000 trials; our campaigns run
hundreds, so interval estimates matter.  Provided here:

* :func:`wilson_interval` — binomial confidence interval for success/
  detection rates (robust at the 0 %/100 % edges where the normal
  approximation fails);
* :func:`bootstrap_mean_interval` — non-parametric CI for mean overheads;
* :func:`summarize` — five-number summary of a sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Two-sided z-scores for common confidence levels.
_Z_SCORES = {0.90: 1.6448536269514722, 0.95: 1.959963984540054, 0.99: 2.5758293035489004}


def _z_for(confidence: float) -> float:
    try:
        return _Z_SCORES[confidence]
    except KeyError:
        known = ", ".join(f"{c:g}" for c in sorted(_Z_SCORES))
        raise ConfigurationError(
            f"unsupported confidence level {confidence}; supported: {known}"
        ) from None


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Args:
        successes: number of positive outcomes (0 <= successes <= trials).
        trials: number of trials (> 0).
        confidence: one of 0.90, 0.95, 0.99.

    Returns:
        ``(low, high)`` bounds on the true proportion.
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"successes must be in [0, trials={trials}], got {successes}"
        )
    z = _z_for(confidence)
    p = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    margin = (
        z * math.sqrt(p * (1.0 - p) / trials + z * z / (4.0 * trials * trials)) / denom
    )
    return max(0.0, centre - margin), min(1.0, centre + margin)


def bootstrap_mean_interval(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean.

    Args:
        values: the sample (non-empty).
        confidence: interval mass (any value in (0, 1)).
        resamples: bootstrap resamples.
        seed: RNG seed for reproducibility.
    """
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ConfigurationError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise ConfigurationError(f"resamples must be >= 1, got {resamples}")
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, values.size, size=(resamples, values.size))
    means = values[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(low), float(high)


@dataclass(frozen=True)
class SampleSummary:
    """Five-number summary plus mean and standard deviation."""

    count: int
    mean: float
    std: float
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float


def summarize(values: Iterable[float]) -> SampleSummary:
    """Summary statistics of a non-empty sample."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ConfigurationError("cannot summarize an empty sample")
    q25, median, q75 = np.quantile(values, [0.25, 0.5, 0.75])
    return SampleSummary(
        count=int(values.size),
        mean=float(values.mean()),
        std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
        minimum=float(values.min()),
        q25=float(q25),
        median=float(median),
        q75=float(q75),
        maximum=float(values.max()),
    )
