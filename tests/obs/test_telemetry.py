"""Telemetry facade: spans, resolution, disabled path, kernel wrapping."""

import pytest

from repro.errors import ConfigurationError
from repro.kernels import resolve_kernels
from repro.obs import (
    InMemoryExporter,
    Telemetry,
    TimedKernels,
    resolve_telemetry,
)


# ----------------------------------------------------------------------
# Instrument updates + events
# ----------------------------------------------------------------------
def test_updates_aggregate_and_emit(fake_clock):
    tel = Telemetry(exporter=InMemoryExporter(), clock=fake_clock)
    tel.count("c", 2.0, where="here")
    tel.gauge("g", 1.5)
    tel.observe("h", 0.25)
    assert tel.registry.counter("c").value == 2.0
    assert tel.registry.gauge("g").value == 1.5
    assert tel.registry.histogram("h").count == 1
    kinds = [event["type"] for event in tel.events()]
    assert kinds == ["counter", "gauge", "hist"]
    assert tel.events()[0]["attrs"] == {"where": "here"}


def test_span_nesting_depth_and_parent(fake_clock):
    tel = Telemetry(exporter=InMemoryExporter(), clock=fake_clock)
    with tel.span("outer", n=4):
        with tel.span("inner"):
            pass
        with tel.span("inner"):
            pass
    spans = [event for event in tel.events() if event["type"] == "span"]
    assert [s["name"] for s in spans] == ["inner", "inner", "outer"]
    inner, _, outer = spans
    assert inner["depth"] == 1 and inner["parent"] == "outer"
    assert outer["depth"] == 0 and outer["parent"] is None
    assert outer["attrs"] == {"n": 4}
    assert outer["end"] > outer["start"]
    # Durations also land in the span.<name>.seconds histogram.
    assert tel.registry.histogram("span.inner.seconds").count == 2


def test_observe_many_emits_one_event_with_values(fake_clock):
    tel = Telemetry(exporter=InMemoryExporter(), clock=fake_clock)
    tel.observe_many("h", [0.25, 0.5, 4.0], shard=1)
    hist = tel.registry.histogram("h")
    assert hist.count == 3
    events = tel.events()
    assert len(events) == 1
    assert events[0]["type"] == "hist"
    assert events[0]["values"] == [0.25, 0.5, 4.0]
    assert events[0]["attrs"] == {"shard": 1}
    tel.observe_many("h", [])  # empty batch: nothing recorded or emitted
    assert hist.count == 3 and len(tel.events()) == 1


def test_observe_many_disabled_is_inert():
    tel = Telemetry.disabled()
    tel.observe_many("h", [1.0])
    assert tel.registry.names() == ()


def test_events_requires_buffering_exporter():
    from repro.obs import NullExporter

    tel = Telemetry(exporter=NullExporter())
    with pytest.raises(ConfigurationError, match="does not buffer"):
        tel.events()


# ----------------------------------------------------------------------
# Disabled path
# ----------------------------------------------------------------------
def test_disabled_telemetry_is_inert():
    tel = Telemetry.disabled()
    assert tel is Telemetry.disabled()  # singleton
    assert not tel.enabled
    tel.count("c")
    tel.gauge("g", 1.0)
    tel.observe("h", 1.0)
    with tel.span("s"):
        pass
    assert tel.registry.names() == ()


def test_disabled_span_is_reused():
    tel = Telemetry.disabled()
    assert tel.span("a") is tel.span("b")


def test_wrap_kernels_disabled_returns_input_unchanged():
    kernels = resolve_kernels("vectorized")
    assert Telemetry.disabled().wrap_kernels(kernels) is kernels


def test_wrap_kernels_enabled_times_dispatch():
    tel = Telemetry(exporter=InMemoryExporter())
    kernels = resolve_kernels("vectorized")
    wrapped = tel.wrap_kernels(kernels)
    assert isinstance(wrapped, TimedKernels)
    assert wrapped.name == kernels.name
    # Re-wrapping passes through; wrapping a wrapper does not stack.
    assert tel.wrap_kernels(wrapped) is wrapped
    rewrapped = Telemetry(exporter=InMemoryExporter()).wrap_kernels(wrapped)
    assert not isinstance(rewrapped.inner, TimedKernels)


def test_timed_kernels_record_per_op_histograms():
    import numpy as np

    from repro.core.blocking import BlockPartition

    from repro.kernels import get_kernels

    tel = Telemetry(exporter=InMemoryExporter())
    # get_kernels, not resolve_kernels: an ambient REPRO_KERNELS override
    # must not change which set this timing test wraps.
    wrapped = tel.wrap_kernels(get_kernels("vectorized"))
    partition = BlockPartition(8, 4)
    weights = np.ones(8)
    wrapped.result_checksums(weights, np.arange(8.0), partition)
    hist = tel.registry.histogram("kernel.result_checksums.seconds")
    assert hist.count == 1
    event = tel.events()[-1]
    assert event["name"] == "kernel.result_checksums.seconds"
    assert event["attrs"]["kernel"] == "vectorized"


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
def test_resolve_instance_passes_through(monkeypatch):
    tel = Telemetry(exporter=InMemoryExporter())
    monkeypatch.setenv("REPRO_OBS", "jsonl")
    assert resolve_telemetry(tel) is tel  # env never overrides instances


def test_resolve_none_defaults_to_disabled():
    assert resolve_telemetry(None) is Telemetry.disabled()
    assert resolve_telemetry("off") is Telemetry.disabled()


def test_resolve_name_is_cached_and_shared():
    a = resolve_telemetry("memory")
    b = resolve_telemetry("memory")
    assert a is b
    assert a.enabled


def test_resolve_env_overrides_name(monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "memory")
    tel = resolve_telemetry("off")
    assert tel.enabled
    assert isinstance(tel.exporter, InMemoryExporter)


def test_resolve_rejects_unknown_types():
    with pytest.raises(ConfigurationError):
        resolve_telemetry(42)


def test_resolve_unknown_name_raises():
    with pytest.raises(ConfigurationError, match="unknown exporter"):
        resolve_telemetry("nope")
