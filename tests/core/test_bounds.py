"""Unit tests for the rounding-error bounds (paper Section III-C)."""

import numpy as np
import pytest

from repro.core import (
    MACHINE_EPSILON,
    AbftConfig,
    ChecksumMatrix,
    DenseAnalyticalBound,
    NormBound,
    SparseBlockBound,
    make_bound,
)
from repro.errors import ConfigurationError
from repro.sparse import banded_spd, random_spd


@pytest.fixture
def checksum():
    return ChecksumMatrix.build(banded_spd(100, 4, 0.8, seed=3), block_size=8)


def test_machine_epsilon_is_double_precision():
    assert MACHINE_EPSILON == 2.0**-53


def test_sparse_bound_formula(checksum):
    """Check block 0 against the paper's formula computed by hand."""
    bound = SparseBlockBound.from_checksum(checksum)
    n_k = checksum.nonempty_columns[0]
    b_s = checksum.partition.length(0)
    expected = (
        (n_k + 2 * b_s - 2) * checksum.row_norm_sums[0]
        + n_k * checksum.checksum_norms[0]
    ) * MACHINE_EPSILON
    assert bound.constants[0] == pytest.approx(expected)


def test_sparse_bound_scales_linearly_with_beta(checksum):
    bound = SparseBlockBound.from_checksum(checksum)
    np.testing.assert_allclose(bound.thresholds(4.0), 2.0 * bound.thresholds(2.0))


def test_sparse_bound_subset_selection(checksum):
    bound = SparseBlockBound.from_checksum(checksum)
    full = bound.thresholds(1.0)
    subset = bound.thresholds(1.0, blocks=np.array([5, 1]))
    np.testing.assert_array_equal(subset, full[[5, 1]])


def test_sparse_bound_tighter_than_dense(checksum):
    """n_k < n makes every per-block bound below the whole-matrix bound."""
    sparse = SparseBlockBound.from_checksum(checksum)
    dense = DenseAnalyticalBound.from_checksum(checksum)
    assert (sparse.thresholds(1.0) < dense.thresholds(1.0)).all()


def test_bounds_admit_actual_rounding_error():
    """On an error-free SpMV the syndrome must stay below the sparse bound."""
    rng = np.random.default_rng(7)
    a = random_spd(500, 5000, seed=7)
    cs = ChecksumMatrix.build(a, block_size=32)
    bound = SparseBlockBound.from_checksum(cs)
    for trial in range(20):
        b = rng.standard_normal(500) * 10.0 ** rng.integers(-3, 4)
        r = a.matvec(b)
        syndrome = np.abs(cs.operand_checksums(b) - cs.result_checksums(r))
        tau = bound.thresholds(float(np.linalg.norm(b)))
        assert (syndrome < tau).all(), f"false positive in trial {trial}"


def test_sparse_bound_catches_visible_error():
    a = random_spd(500, 5000, seed=8)
    cs = ChecksumMatrix.build(a, block_size=32)
    bound = SparseBlockBound.from_checksum(cs)
    b = np.ones(500)
    r = a.matvec(b)
    r[100] += 1e-6 * abs(r[100]) + 1e-9
    syndrome = np.abs(cs.operand_checksums(b) - cs.result_checksums(r))
    tau = bound.thresholds(float(np.linalg.norm(b)))
    flagged = np.nonzero(syndrome > tau)[0]
    np.testing.assert_array_equal(flagged, [100 // 32])


def test_norm_bound_is_beta(checksum):
    bound = NormBound(n_blocks=checksum.n_blocks)
    np.testing.assert_array_equal(
        bound.thresholds(3.5), np.full(checksum.n_blocks, 3.5)
    )


def test_norm_bound_much_looser_than_sparse(checksum):
    """The ||b||_2 bound dwarfs the analytical one on well-scaled data."""
    sparse = SparseBlockBound.from_checksum(checksum)
    norm = NormBound(n_blocks=checksum.n_blocks)
    beta = 10.0
    assert (norm.thresholds(beta) > 1e6 * sparse.thresholds(beta)).all()


def test_bound_scale_multiplies(checksum):
    base = SparseBlockBound.from_checksum(checksum)
    scaled = SparseBlockBound.from_checksum(checksum, scale=2.0)
    np.testing.assert_allclose(scaled.thresholds(1.0), 2.0 * base.thresholds(1.0))


def test_make_bound_dispatch(checksum):
    assert isinstance(make_bound("sparse", checksum), SparseBlockBound)
    assert isinstance(make_bound("dense", checksum), DenseAnalyticalBound)
    assert isinstance(make_bound("norm", checksum), NormBound)
    with pytest.raises(ConfigurationError):
        make_bound("bogus", checksum)


def test_invalid_scales_rejected(checksum):
    with pytest.raises(ConfigurationError):
        SparseBlockBound.from_checksum(checksum, scale=0.0)
    with pytest.raises(ConfigurationError):
        DenseAnalyticalBound.from_checksum(checksum, scale=-1.0)
    with pytest.raises(ConfigurationError):
        NormBound(n_blocks=3, scale=0.0)


def test_abft_config_validation():
    with pytest.raises(ConfigurationError):
        AbftConfig(block_size=0)
    with pytest.raises(ConfigurationError):
        AbftConfig(bound="nope")
    with pytest.raises(ConfigurationError):
        AbftConfig(weights="nope")
    with pytest.raises(ConfigurationError):
        AbftConfig(bound_scale=0.0)
    with pytest.raises(ConfigurationError):
        AbftConfig(max_correction_rounds=0)
