"""Unit tests for sparse constructors and binary operations."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeMismatchError
from repro.sparse import CooMatrix, banded_spd
from repro.sparse.construct import add, diags, identity, shift, subtract


def test_identity():
    eye = identity(4)
    np.testing.assert_array_equal(eye.to_dense(), np.eye(4))
    assert identity(0).shape == (0, 0)
    with pytest.raises(ConfigurationError):
        identity(-1)


def test_diags():
    d = diags([1.0, -2.0, 0.0])
    np.testing.assert_array_equal(d.to_dense(), np.diag([1.0, -2.0, 0.0]))
    assert d.nnz == 3  # structural zero retained
    with pytest.raises(ShapeMismatchError):
        diags(np.ones((2, 2)))


def test_add_matches_dense():
    a = banded_spd(30, 2, 0.8, seed=1)
    b = banded_spd(30, 3, 0.5, seed=2)
    np.testing.assert_allclose(add(a, b).to_dense(), a.to_dense() + b.to_dense())


def test_add_shape_mismatch():
    with pytest.raises(ShapeMismatchError):
        add(identity(3), identity(4))


def test_subtract_self_is_structurally_zero():
    a = banded_spd(20, 2, 1.0, seed=3)
    diff = subtract(a, a)
    np.testing.assert_array_equal(diff.to_dense(), np.zeros((20, 20)))
    assert diff.nnz == a.nnz  # cancelled entries stay structural


def test_shift_adds_sigma_to_diagonal():
    a = banded_spd(10, 1, 1.0, seed=4)
    shifted = shift(a, 2.5)
    np.testing.assert_allclose(shifted.diagonal(), a.diagonal() + 2.5)
    np.testing.assert_allclose(
        shifted.to_dense() - a.to_dense(), 2.5 * np.eye(10)
    )


def test_shift_rejects_rectangular():
    rect = CooMatrix.from_entries((2, 3), [(0, 0, 1.0)]).to_csr()
    with pytest.raises(ShapeMismatchError):
        shift(rect, 1.0)


def test_shift_improves_conditioning_for_pcg():
    """Integration: a nearly singular matrix becomes solvable when shifted."""
    from repro.solvers import pcg

    a = banded_spd(50, 2, 1.0, seed=5, dominance=1e-9)
    regularized = shift(a, 1.0)
    b = regularized.matvec(np.ones(50))
    result = pcg(regularized, b, tol=1e-10)
    assert result.converged
    np.testing.assert_allclose(result.x, np.ones(50), rtol=1e-6)
