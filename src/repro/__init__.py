"""repro — Efficient Algorithm-Based Fault Tolerance for Sparse Matrix Operations.

A from-scratch reproduction of Schöll, Braun, Kochte & Wunderlich (DSN 2016):
block-based ABFT for sparse matrix-vector multiplication with implicit error
localization, analytical sparse rounding-error bounds, baseline schemes from
the related work, a fault-tolerant PCG solver, and the full experimental
harness (fault injection, machine model, campaign framework).

Quickstart::

    import numpy as np
    from repro import FaultTolerantSpMV, suite_matrix

    a = suite_matrix("nos3")
    ft = FaultTolerantSpMV(a, block_size=32)
    b = np.ones(a.n_cols)
    result = ft.multiply(b)           # protected SpMV
    assert result.corrected_blocks == ()
"""

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    InjectionError,
    ReproError,
    SchedulerError,
    ShapeMismatchError,
    SingularMatrixError,
    SparseFormatError,
)
from repro.sparse import (
    CooMatrix,
    CsrMatrix,
    banded_spd,
    poisson2d,
    poisson3d,
    random_spd,
    suite_matrix,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SparseFormatError",
    "ShapeMismatchError",
    "SingularMatrixError",
    "ConvergenceError",
    "SchedulerError",
    "InjectionError",
    "ConfigurationError",
    # sparse substrate
    "CooMatrix",
    "CsrMatrix",
    "banded_spd",
    "poisson2d",
    "poisson3d",
    "random_spd",
    "suite_matrix",
]

try:  # pragma: no cover - core lands later in the staged build
    from repro.core import (  # noqa: F401
        AbftConfig,
        BlockAbftDetector,
        FaultTolerantSpMV,
        SpmvResult,
    )

    __all__ += ["AbftConfig", "BlockAbftDetector", "FaultTolerantSpMV", "SpmvResult"]
except ImportError:  # pragma: no cover
    pass

try:  # pragma: no cover - schemes land later in the staged build
    from repro.schemes import (  # noqa: F401
        ProtectedSpmvResult,
        ProtectionScheme,
        available_schemes,
        make_scheme,
        resolve_scheme,
    )

    __all__ += [
        "ProtectedSpmvResult",
        "ProtectionScheme",
        "available_schemes",
        "make_scheme",
        "resolve_scheme",
    ]
except ImportError:  # pragma: no cover
    pass
