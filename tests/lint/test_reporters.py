"""Text/JSON/SARIF reporter output, including SARIF structural validity."""

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.lint import get_rule, lint_source, render, render_sarif

SOURCE = (
    "def detect(syndrome, threshold):\n"
    "    if syndrome == 0.0:\n"
    "        return False\n"
    "    return syndrome != threshold\n"
)


def findings():
    found, _, _ = lint_source(SOURCE, Path("mod.py"), [get_rule("ABFT003")])
    return found


def test_text_report_has_locations_and_summary():
    new = findings()
    report = render("text", new[:1], known=new[1:], files_checked=1, suppressed=2)
    assert "mod.py:2:" in report
    assert "[baseline]" in report
    assert "1 new finding(s), 1 baselined, 2 suppressed across 1 file(s)" in report


def test_json_report_round_trips():
    new = findings()
    payload = json.loads(render("json", new, files_checked=1))
    assert payload["tool"] == "reprolint"
    assert payload["files_checked"] == 1
    assert len(payload["findings"]) == len(new)
    for record in payload["findings"]:
        assert record["rule"] == "ABFT003"
        assert record["baselined"] is False
        assert record["fingerprint"]
        assert record["line"] >= 1 and record["column"] >= 1


def test_sarif_document_is_structurally_valid():
    new = findings()
    document = json.loads(render_sarif(new[:1], known=new[1:]))
    assert document["version"] == "2.1.0"
    assert document["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "reprolint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["help"]["text"]
    levels = []
    for result in run["results"]:
        assert driver["rules"][result["ruleIndex"]]["id"] == result["ruleId"]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1
        assert result["partialFingerprints"]["reprolint/v1"]
        levels.append(result["level"])
    assert levels == ["error", "note"]  # new first, baselined demoted


def test_sarif_covers_synthetic_parse_error_rule():
    broken, _, _ = lint_source("def broken(:\n", Path("x.py"), [])
    document = json.loads(render_sarif(broken))
    (run,) = document["runs"]
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert "E999" in rule_ids
    assert run["results"][0]["ruleId"] == "E999"


def test_unknown_format_raises():
    with pytest.raises(ConfigurationError):
        render("xml", [])
