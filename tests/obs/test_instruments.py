"""Unit tests for the typed instruments and their registry."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    log_buckets,
)


# ----------------------------------------------------------------------
# log_buckets
# ----------------------------------------------------------------------
def test_log_buckets_span_decades():
    edges = log_buckets(1e-3, 1e3)
    assert edges[0] == pytest.approx(1e-3)
    assert edges[-1] == pytest.approx(1e3)
    assert len(edges) == 7  # one edge per decade, inclusive
    assert all(b > a for a, b in zip(edges, edges[1:]))


def test_log_buckets_per_decade_subdivision():
    edges = log_buckets(1.0, 10.0, per_decade=4)
    assert len(edges) == 5
    assert edges[1] == pytest.approx(10.0 ** 0.25)


@pytest.mark.parametrize("lo,hi", [(0.0, 1.0), (-1.0, 1.0), (1.0, 1.0), (2.0, 1.0)])
def test_log_buckets_rejects_bad_ranges(lo, hi):
    with pytest.raises(ConfigurationError):
        log_buckets(lo, hi)


# ----------------------------------------------------------------------
# Counter / Gauge
# ----------------------------------------------------------------------
def test_counter_accumulates():
    c = Counter("abft.detections")
    c.add()
    c.add(3.0)
    assert c.value == 4.0
    assert c.snapshot() == 4.0


@pytest.mark.parametrize("bad", [-1.0, math.nan, math.inf])
def test_counter_rejects_negative_and_nonfinite(bad):
    c = Counter("abft.detections")
    with pytest.raises(ConfigurationError):
        c.add(bad)


def test_gauge_keeps_last_value():
    g = Gauge("pcg.residual_relative")
    assert math.isnan(g.value)
    g.set(0.5)
    g.set(0.25)
    assert g.value == 0.25
    assert g.updates == 2


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
def test_histogram_buckets_underflow_and_overflow():
    h = Histogram("m", buckets=(1.0, 10.0, 100.0))
    for value in (0.1, 5.0, 50.0, 1000.0):
        h.observe(value)
    assert h.counts == [1, 1, 1, 1]
    assert h.count == 4
    assert h.min == 0.1 and h.max == 1000.0


def test_histogram_edge_values_go_right():
    h = Histogram("m", buckets=(1.0, 10.0))
    h.observe(1.0)  # exactly on an edge: lands at/above the edge
    assert h.counts == [0, 1, 0]


def test_histogram_counts_nan_separately():
    h = Histogram("m", buckets=(1.0, 10.0))
    h.observe(math.nan)
    h.observe(2.0)
    assert h.nan_count == 1
    assert h.count == 1
    assert h.mean == 2.0


def test_histogram_mean_of_empty_is_nan():
    assert math.isnan(Histogram("m").mean)


def test_histogram_observe_many_matches_scalar_observe():
    values = (0.1, 1.0, 5.0, 50.0, 1000.0, math.nan)
    scalar = Histogram("m", buckets=(1.0, 10.0, 100.0))
    for value in values:
        scalar.observe(value)
    batched = Histogram("m", buckets=(1.0, 10.0, 100.0))
    returned = batched.observe_many(values)
    assert batched.snapshot() == scalar.snapshot()
    assert returned[:5] == [0.1, 1.0, 5.0, 50.0, 1000.0]
    assert math.isnan(returned[5])


def test_histogram_observe_many_empty_batch_is_inert():
    h = Histogram("m", buckets=(1.0, 10.0))
    assert h.observe_many(()) == []
    assert h.count == 0 and h.nan_count == 0


def test_histogram_rejects_nonincreasing_edges():
    with pytest.raises(ConfigurationError):
        Histogram("m", buckets=(1.0, 1.0, 2.0))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_get_or_create_returns_same_instrument():
    r = Registry()
    assert r.counter("a") is r.counter("a")
    assert r.histogram("h") is r.histogram("h")


def test_registry_rejects_type_conflicts():
    r = Registry()
    r.counter("a")
    with pytest.raises(ConfigurationError):
        r.gauge("a")
    with pytest.raises(ConfigurationError):
        r.histogram("a")


def test_registry_rejects_conflicting_histogram_buckets():
    r = Registry()
    r.histogram("h", buckets=(1.0, 2.0))
    r.histogram("h")  # omitting buckets accepts the existing edges
    r.histogram("h", buckets=(1.0, 2.0))  # identical edges are fine
    with pytest.raises(ConfigurationError):
        r.histogram("h", buckets=(1.0, 3.0))


def test_registry_get_unknown_name_raises():
    with pytest.raises(ConfigurationError):
        Registry().get("nope")


def test_registry_snapshot_is_sorted_and_typed():
    r = Registry()
    r.counter("b").add(2.0)
    r.gauge("a").set(1.5)
    r.histogram("c", buckets=(1.0, 2.0)).observe(1.5)
    snap = r.snapshot()
    assert list(snap) == ["a", "b", "c"]
    assert snap["a"] == 1.5
    assert snap["b"] == 2.0
    assert snap["c"]["count"] == 1
    assert r.names() == ("a", "b", "c")
