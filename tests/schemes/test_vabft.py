"""The variance-adaptive scheme: estimator properties and end-to-end wins.

Pinned invariants:

* the Welford estimator matches NumPy's mean/std bit-for-bit in spirit
  (to float tolerance) on arbitrary sample batches, ignores non-finite
  observations, and never learns from flagged blocks;
* adaptive thresholds never exceed the analytical bound (the scheme is
  never less safe than the paper's), tighten monotonically with respect
  to the min-samples gate, and converge to ``mean + k_sigma * std``
  under stationary noise;
* on float32 storage ``vabft`` detects an injected error the analytical
  bound misses — the coverage gain the fig7 precision harness measures.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AbftConfig
from repro.core.detector import DetectionReport
from repro.errors import ConfigurationError
from repro.schemes import make_scheme
from repro.schemes.vabft import (
    SyndromeVarianceEstimator,
    VarianceAdaptiveBound,
    VarianceAdaptiveSpMV,
)
from repro.sparse import random_spd

finite_floats = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def sample_batches(draw, max_blocks=6, max_samples=24):
    n_blocks = draw(st.integers(1, max_blocks))
    n_samples = draw(st.integers(2, max_samples))
    rows = draw(
        st.lists(
            st.lists(finite_floats, min_size=n_blocks, max_size=n_blocks),
            min_size=n_samples,
            max_size=n_samples,
        )
    )
    return np.asarray(rows, dtype=np.float64)


# ----------------------------------------------------------------------
# Estimator properties
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(sample_batches())
def test_welford_matches_numpy(batch):
    estimator = SyndromeVarianceEstimator(batch.shape[1])
    for row in batch:
        estimator.update(row)
    np.testing.assert_allclose(
        estimator.means, batch.mean(axis=0), rtol=1e-10, atol=1e-12
    )
    np.testing.assert_allclose(
        estimator.std(), batch.std(axis=0), rtol=1e-7, atol=1e-10
    )
    assert np.all(estimator.counts == batch.shape[0])


@settings(max_examples=40, deadline=None)
@given(sample_batches(), st.integers(0, 5))
def test_nonfinite_observations_are_ignored(batch, poison_column):
    poison_column = poison_column % batch.shape[1]
    estimator = SyndromeVarianceEstimator(batch.shape[1])
    reference = SyndromeVarianceEstimator(batch.shape[1])
    for row in batch:
        reference.update(row)
        poisoned = row.copy()
        poisoned[poison_column] = np.nan
        estimator.update(poisoned)
        estimator.update(row)  # interleave a clean sample
    assert estimator.counts[poison_column] == batch.shape[0]
    keep = np.arange(batch.shape[1]) != poison_column
    assert np.all(estimator.counts[keep] == 2 * batch.shape[0])
    np.testing.assert_allclose(
        estimator.means[poison_column],
        reference.means[poison_column],
        rtol=1e-12,
    )


def test_flagged_blocks_do_not_learn():
    estimator = SyndromeVarianceEstimator(4)
    report = DetectionReport(
        flagged=np.array([2]),
        syndrome=np.array([1e-15, 2e-15, 5.0, 3e-15]),
        thresholds=np.full(4, 1e-10),
        blocks=np.arange(4),
        beta=2.0,
    )
    exceeded = np.array([False, False, True, False])
    estimator.observe_report(report, exceeded)
    assert list(estimator.counts) == [1, 1, 0, 1]
    # the corrupted block's huge syndrome never entered the noise model
    assert estimator.means[2] == 0.0


def test_degenerate_beta_skips_the_report():
    estimator = SyndromeVarianceEstimator(2)
    for beta in (0.0, np.inf, np.nan):
        estimator.observe_report(
            DetectionReport(
                flagged=np.array([], dtype=np.int64),
                syndrome=np.array([1e-15, 1e-15]),
                thresholds=np.full(2, 1e-10),
                blocks=np.arange(2),
                beta=beta,
            ),
            np.array([False, False]),
        )
    assert np.all(estimator.counts == 0)


# ----------------------------------------------------------------------
# Adaptive bound properties
# ----------------------------------------------------------------------
class _FlatBound:
    """Analytical stand-in: constant * beta for every block."""

    def __init__(self, n_blocks, constant):
        self.constants = np.full(n_blocks, constant)

    def thresholds(self, beta, blocks=None):
        constants = self.constants if blocks is None else self.constants[blocks]
        return constants * beta


@settings(max_examples=40, deadline=None)
@given(sample_batches(), st.floats(min_value=0.1, max_value=100.0))
def test_adaptive_threshold_never_exceeds_analytical(batch, beta):
    n_blocks = batch.shape[1]
    estimator = SyndromeVarianceEstimator(n_blocks)
    analytical = _FlatBound(n_blocks, 1e-3)
    bound = VarianceAdaptiveBound(
        estimator, analytical, floor=np.full(n_blocks, 1e-16), min_samples=2
    )
    for row in batch:
        estimator.update(row)
        assert np.all(
            bound.thresholds(beta) <= analytical.thresholds(beta) * (1 + 1e-12)
        )


def test_below_min_samples_falls_back_to_analytical():
    estimator = SyndromeVarianceEstimator(3)
    analytical = _FlatBound(3, 7.0)
    bound = VarianceAdaptiveBound(
        estimator, analytical, floor=np.full(3, 1e-16), min_samples=8
    )
    for _ in range(7):
        estimator.update(np.full(3, 1e-9))
    np.testing.assert_array_equal(bound.thresholds(2.0), analytical.thresholds(2.0))
    estimator.update(np.full(3, 1e-9))  # 8th sample crosses the gate
    assert np.all(bound.thresholds(2.0) < analytical.thresholds(2.0))


@settings(max_examples=25, deadline=None)
@given(
    st.floats(min_value=1e-12, max_value=1e-6),
    st.floats(min_value=0.01, max_value=0.5),
    st.integers(0, 2**16),
)
def test_convergence_under_stationary_noise(mu, rel_sigma, seed):
    """With many samples from N(mu, sigma), every block's learned constant
    converges to mu + k_sigma * sigma (within sampling error)."""
    sigma = rel_sigma * mu
    n_blocks, n_samples = 64, 500
    rng = np.random.default_rng(seed)
    estimator = SyndromeVarianceEstimator(n_blocks)
    bound = VarianceAdaptiveBound(
        estimator,
        _FlatBound(n_blocks, 1e3),  # analytical far above: never clips
        floor=np.zeros(n_blocks),
        k_sigma=6.0,
        min_samples=2,
    )
    for row in np.abs(rng.normal(mu, sigma, size=(n_samples, n_blocks))):
        estimator.update(row)
    # folded-normal mean/std differ from (mu, sigma) by < 2% at sigma/mu<=0.5
    learned = bound.thresholds(1.0)
    target = mu + 6.0 * sigma
    assert np.all(learned >= 0.5 * target)
    assert np.all(learned <= 1.5 * target)


def test_threshold_floor_prevents_zero_thresholds():
    estimator = SyndromeVarianceEstimator(2)
    bound = VarianceAdaptiveBound(
        estimator, _FlatBound(2, 1e3), floor=np.array([1e-14, 1e-14]), min_samples=1
    )
    estimator.update(np.zeros(2))  # an all-zero clean history
    assert np.all(bound.thresholds(1.0) >= 1e-14)


def test_invalid_parameters_raise():
    estimator = SyndromeVarianceEstimator(1)
    flat = _FlatBound(1, 1.0)
    with pytest.raises(ConfigurationError):
        VarianceAdaptiveBound(estimator, flat, np.array([0.0]), k_sigma=0.0)
    with pytest.raises(ConfigurationError):
        VarianceAdaptiveBound(estimator, flat, np.array([0.0]), min_samples=0)
    with pytest.raises(ConfigurationError):
        SyndromeVarianceEstimator(-1)


# ----------------------------------------------------------------------
# The scheme end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def f32_corpus():
    matrix = random_spd(96, 900, seed=7, dtype=np.float32)
    b = np.random.default_rng(123).standard_normal(96).astype(np.float32)
    return matrix, b


def test_vabft_exposes_no_beta_coefficients():
    """Planned execution must re-evaluate thresholds per call (they drift
    as the estimator learns), which ProtectedPlan does exactly when the
    bound has no beta_coefficients."""
    matrix = random_spd(32, 250, seed=1)
    scheme = make_scheme("vabft", matrix, config=AbftConfig(block_size=8))
    assert not hasattr(scheme.detector.bound, "beta_coefficients")


def test_factory_rejects_unknown_and_bad_options():
    matrix = random_spd(16, 60, seed=2)
    with pytest.raises(ConfigurationError, match="does not accept"):
        make_scheme("vabft", matrix, bound_override=None)
    with pytest.raises(ConfigurationError, match="k_sigma"):
        make_scheme("vabft", matrix, k_sigma="six")
    with pytest.raises(ConfigurationError, match="warmup"):
        make_scheme("vabft", matrix, warmup=True)


def test_warmup_seeds_every_block():
    matrix = random_spd(64, 500, seed=4)
    scheme = make_scheme("vabft", matrix, config=AbftConfig(block_size=16))
    assert isinstance(scheme, VarianceAdaptiveSpMV)
    assert np.all(scheme.estimator.counts >= scheme.warmup - 1)


def test_no_false_positives_across_operand_stream(f32_corpus):
    matrix, _ = f32_corpus
    scheme = make_scheme("vabft", matrix, config=AbftConfig(block_size=16))
    rng = np.random.default_rng(42)
    for scale_exp in range(-3, 4):
        b = (rng.standard_normal(96) * 10.0**scale_exp).astype(np.float32)
        result = scheme.multiply(b)
        assert not any(result.detections), f"false positive at 1e{scale_exp}"


def test_vabft_detects_what_analytical_misses_on_float32(f32_corpus):
    """The headline claim: an injected error sized between the adaptive
    and analytical thresholds is invisible to abft but caught by vabft."""
    matrix, b = f32_corpus
    config = AbftConfig(block_size=16)
    abft = make_scheme("abft", matrix, config=config)
    vabft = make_scheme("vabft", matrix, config=config)
    vabft.multiply(b.copy())  # one extra clean call to settle statistics

    beta = float(np.linalg.norm(b))
    analytical = abft.detector.bound.thresholds(beta)
    adaptive = vabft.detector.bound.thresholds(beta)
    # inject into the block with the largest gap, halfway (geometric mean)
    block = int(np.argmax(analytical / np.maximum(adaptive, 1e-300)))
    magnitude = float(np.sqrt(analytical[block] * adaptive[block]))
    row = block * 16

    def make_burst():
        state = {"armed": True}

        def hook(stage, data, work):
            if stage == "result" and state["armed"]:
                data[row] += magnitude
                state["armed"] = False

        return hook

    missed = abft.multiply(b.copy(), tamper=make_burst())
    caught = vabft.multiply(b.copy(), tamper=make_burst())
    assert not any(missed.detections), "error unexpectedly above analytical bound"
    assert any(caught.detections)
    assert block in caught.corrected_blocks


def test_planned_vabft_matches_unplanned(f32_corpus):
    matrix, b = f32_corpus
    config = AbftConfig(block_size=16)
    direct = make_scheme("vabft", matrix, config=config)
    planned_scheme = make_scheme("vabft", matrix, config=config)
    expected = direct.multiply(b.copy())
    with planned_scheme.planned(n_shards=2) as plan:
        got = plan.multiply(b.copy())
    np.testing.assert_array_equal(got.value, expected.value)
    assert got.detections == expected.detections
