"""Unit tests for the protected sparse triangular solve extension."""

import numpy as np
import pytest

from repro.core.triangular import ProtectedTriangularSolve, forward_substitution
from repro.errors import ConfigurationError, ShapeMismatchError, SingularMatrixError
from repro.sparse import CooMatrix, banded_spd, random_spd


def lower_factor(n=300, seed=101):
    """A well-conditioned sparse lower-triangular matrix (SPD lower part)."""
    spd = random_spd(n, 6 * n, seed=seed)
    dense = np.tril(spd.to_dense())
    return CooMatrix.from_dense(dense).to_csr()


@pytest.fixture(scope="module")
def system():
    lower = lower_factor()
    rng = np.random.default_rng(101)
    x_true = rng.standard_normal(lower.n_rows)
    return lower, x_true, lower.matvec(x_true)


def one_shot(stage_name, mutate):
    state = {"done": False}

    def hook(stage, data, work):
        if stage == stage_name and not state["done"]:
            mutate(data)
            state["done"] = True

    return hook


def test_forward_substitution_correct(system):
    lower, x_true, rhs = system
    x = np.empty(lower.n_rows)
    forward_substitution(lower, rhs, x)
    np.testing.assert_allclose(x, x_true, rtol=1e-9)


def test_forward_substitution_partial_restart(system):
    lower, x_true, rhs = system
    x = np.empty(lower.n_rows)
    forward_substitution(lower, rhs, x)
    x[150:] = 0.0  # wipe the tail, keep the prefix
    forward_substitution(lower, rhs, x, start_row=150)
    np.testing.assert_allclose(x, x_true, rtol=1e-9)


def test_clean_solve_detects_nothing(system):
    lower, x_true, rhs = system
    scheme = ProtectedTriangularSolve(lower, block_size=32)
    result = scheme.solve(rhs)
    assert result.clean
    assert result.rounds == 0
    np.testing.assert_allclose(result.value, x_true, rtol=1e-9)


def test_no_false_positives_across_operand_scales(system):
    lower, _, _ = system
    scheme = ProtectedTriangularSolve(lower, block_size=32)
    rng = np.random.default_rng(102)
    for _ in range(20):
        rhs = rng.standard_normal(lower.n_rows) * 10.0 ** rng.integers(-3, 4)
        assert scheme.solve(rhs).clean


def test_injected_error_detected_and_resolved(system):
    lower, x_true, rhs = system
    scheme = ProtectedTriangularSolve(lower, block_size=32)
    result = scheme.solve(
        rhs, tamper=one_shot("result", lambda d: d.__setitem__(100, d[100] + 5.0))
    )
    assert not result.clean
    assert 100 // 32 in result.detected
    assert result.resolved_from and result.resolved_from[0] <= 100 // 32
    np.testing.assert_allclose(result.value, x_true, rtol=1e-9)


def test_suffix_resolve_starts_at_first_flagged_block(system):
    lower, x_true, rhs = system
    scheme = ProtectedTriangularSolve(lower, block_size=32)

    def mutate(d):
        d[40] += 3.0  # block 1
        d[250] -= 2.0  # block 7

    result = scheme.solve(rhs, tamper=one_shot("result", mutate))
    assert result.resolved_from[0] == 1
    np.testing.assert_allclose(result.value, x_true, rtol=1e-9)


def test_nan_in_solution_detected(system):
    lower, x_true, rhs = system
    scheme = ProtectedTriangularSolve(lower, block_size=32)
    result = scheme.solve(
        rhs, tamper=one_shot("result", lambda d: d.__setitem__(10, np.nan))
    )
    assert not result.clean
    np.testing.assert_allclose(result.value, x_true, rtol=1e-9)


def test_corrupted_t2_recovered_by_refresh(system):
    lower, x_true, rhs = system
    scheme = ProtectedTriangularSolve(lower, block_size=32)
    result = scheme.solve(
        rhs, tamper=one_shot("t2", lambda d: d.__setitem__(4, d[4] + 9.0))
    )
    assert not result.exhausted
    np.testing.assert_allclose(result.value, x_true, rtol=1e-9)


def test_persistent_fault_exhausts(system):
    lower, _, rhs = system

    def hook(stage, data, work):
        if stage in ("result", "corrected") and data.size:
            data[-1] = np.inf

    scheme = ProtectedTriangularSolve(lower, block_size=32, max_rounds=2)
    result = scheme.solve(rhs, tamper=hook)
    assert result.exhausted


def test_protected_solve_costs_more_than_unprotected(system):
    lower, _, rhs = system
    scheme = ProtectedTriangularSolve(lower, block_size=32)
    from repro.machine import Machine

    machine = Machine()
    plain = machine.makespan(scheme._solve_graph(include_detection=False))
    result = scheme.solve(rhs)
    assert result.seconds > plain
    # ...but by less than a full second solve (the point of the scheme).
    assert result.seconds < 2.5 * plain


def test_validation():
    rect = CooMatrix.from_entries((2, 3), [(0, 0, 1.0)]).to_csr()
    with pytest.raises(ShapeMismatchError):
        ProtectedTriangularSolve(rect)
    not_lower = banded_spd(10, 2, 1.0, seed=1)  # symmetric: has upper entries
    with pytest.raises(ConfigurationError):
        ProtectedTriangularSolve(not_lower)
    singular = CooMatrix.from_entries(
        (2, 2), [(0, 0, 1.0), (1, 0, 1.0)]
    ).to_csr()  # missing diagonal in row 1
    with pytest.raises(SingularMatrixError):
        ProtectedTriangularSolve(singular)
    lower = lower_factor(64)
    with pytest.raises(ConfigurationError):
        ProtectedTriangularSolve(lower, max_rounds=0)
    scheme = ProtectedTriangularSolve(lower)
    with pytest.raises(ShapeMismatchError):
        scheme.solve(np.ones(63))
