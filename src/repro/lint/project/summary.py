"""Per-file fact extraction for project-wide analysis.

One pass over a module's AST produces a **summary**: a plain
JSON-serializable dict holding everything the cross-module rules need —
imports, classes with attribute types, functions with their call sites,
protected-matrix mutations, registry mutations, allocation sites,
module-state writes, and shared-memory arena lifecycle events.

Summaries are deliberately *syntactic*: extraction looks at one file in
isolation and never consults another module, which makes the result a
pure function of the file's content — the property the incremental cache
(:mod:`repro.lint.project.cache`) relies on.  All cross-module meaning
(resolving a call to the function it names, deciding whether ``Arena``
is really :class:`repro.perf.shm.Arena`'s re-export) is added later by
the linker (:mod:`repro.lint.project.graph`).
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.lint.rules.abft import PROTECTED_ATTRS, REFRESH_CALLS
from repro.lint.rules.base import dotted_name, terminal_name

#: Registry mutators across the four runtime registries (kernels, schemes,
#: plan backends, telemetry exporters) plus the lint registry itself.
REGISTRY_MUTATORS = frozenset(
    {
        "register_kernels", "unregister_kernels",
        "register_scheme", "unregister_scheme",
        "register_backend", "unregister_backend",
        "register_exporter", "unregister_exporter",
        "register_rule", "unregister_rule",
    }
)

#: Call names that hand a callable to a thread-execution primitive.
THREAD_SPAWN_CALLS = frozenset({"submit", "Thread", "map"})

#: Call names that hand a callable to a process-execution primitive.
PROCESS_SPAWN_CALLS = frozenset({"Process"})

#: Arena lifecycle constructors (class method on the ``Arena`` class).
ARENA_CONSTRUCTORS = frozenset({"create", "attach"})

#: NumPy calls that always materialize a fresh array.
NP_ALLOCATORS = frozenset(
    {
        "empty", "zeros", "ones", "full", "arange", "array", "copy",
        "empty_like", "zeros_like", "ones_like", "full_like",
        "concatenate", "stack", "hstack", "vstack", "tile", "repeat",
    }
)

#: Builtin constructors that materialize a fresh container.
CONTAINER_CONSTRUCTORS = frozenset({"list", "dict", "set"})

#: Mutating container methods (writes to shared module-level state).
STATE_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "add", "update", "pop", "popitem", "clear",
        "discard", "remove", "setdefault", "insert",
    }
)

#: Module-level constructors marking a binding as mutable shared state.
MUTABLE_STATE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "WeakSet",
     "WeakValueDictionary", "deque", "Counter"}
)

Summary = Dict[str, Any]


def _annotation_name(node: Optional[ast.expr]) -> str:
    """Terminal class name of an annotation (handles string annotations,
    ``Optional[X]``/quoted forward refs); ``""`` when unresolvable."""
    if node is None:
        return ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip().strip("'\"")
        return text.rsplit(".", 1)[-1] if text.isidentifier() or "." in text else ""
    if isinstance(node, ast.Subscript):  # Optional[X] / "Optional[Arena]"
        return _annotation_name(node.slice)
    name = terminal_name(node)
    return name


def _call_descriptor(node: ast.Call) -> Optional[Dict[str, Any]]:
    """Classify a call's receiver shape for later resolution."""
    func = node.func
    if isinstance(func, ast.Name):
        return {"kind": "name", "name": func.id, "line": node.lineno,
                "col": node.col_offset + 1}
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Name):
            if base.id == "self":
                return {"kind": "self", "method": func.attr,
                        "line": node.lineno, "col": node.col_offset + 1}
            return {"kind": "var", "var": base.id, "method": func.attr,
                    "line": node.lineno, "col": node.col_offset + 1}
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            return {"kind": "self_attr", "attr": base.attr, "method": func.attr,
                    "line": node.lineno, "col": node.col_offset + 1}
        dotted = dotted_name(func)
        if dotted:
            return {"kind": "dotted", "dotted": dotted,
                    "name": terminal_name(func),
                    "line": node.lineno, "col": node.col_offset + 1}
    return None


def _ref_descriptor(node: ast.expr) -> Optional[Dict[str, Any]]:
    """Classify a bare callable reference (a function passed as a value)."""
    if isinstance(node, ast.Name):
        return {"kind": "name", "name": node.id}
    if isinstance(node, ast.Attribute):
        base = node.value
        if isinstance(base, ast.Name):
            if base.id == "self":
                return {"kind": "self", "method": node.attr}
            return {"kind": "var", "var": base.id, "method": node.attr}
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            return {"kind": "self_attr", "attr": base.attr, "method": node.attr}
    return None


class _FunctionFacts:
    """Mutable accumulator for one function's facts."""

    def __init__(
        self,
        name: str,
        class_name: Optional[str],
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        self.name = name
        self.class_name = class_name
        self.node = node
        self.calls: List[Dict[str, Any]] = []
        self.callable_refs: List[Dict[str, Any]] = []
        self.param_types: Dict[str, str] = {}
        self.local_types: Dict[str, str] = {}
        self.local_calls: Dict[str, str] = {}
        self.returns_ctor: Optional[str] = None
        self.returned_names: Set[str] = set()
        self.refreshes = False
        self.mutations: List[Dict[str, Any]] = []
        self.registry_calls: List[Dict[str, Any]] = []
        self.allocations: List[Dict[str, Any]] = []
        self.state_writes: List[Dict[str, Any]] = []
        self.arena_events: List[Dict[str, Any]] = []
        self.arena_vars: Set[str] = set()
        self.view_vars: Dict[str, str] = {}
        self.local_names: Set[str] = set()
        self.global_names: Set[str] = set()

    def to_dict(self) -> Dict[str, Any]:
        mutations = []
        for m in self.mutations:
            base_kind = m["base_kind"]
            escapes = base_kind in ("param", "self", "self_attr") or (
                base_kind == "local" and m["base"] in self.returned_names
            )
            mutations.append({**m, "escapes": escapes})
        return {
            "name": self.name,
            "class": self.class_name,
            "line": getattr(self.node, "lineno", 0),
            "calls": self.calls,
            "callable_refs": self.callable_refs,
            "param_types": self.param_types,
            "local_types": self.local_types,
            "local_calls": self.local_calls,
            "returns_ctor": self.returns_ctor,
            "refreshes": self.refreshes,
            "mutations": mutations,
            "registry_calls": self.registry_calls,
            "allocations": self.allocations,
            "state_writes": self.state_writes,
            "arena_events": self.arena_events,
        }


class _SummaryExtractor(ast.NodeVisitor):
    """One-pass walker building the module summary."""

    def __init__(self, module_name: str) -> None:
        self.module_name = module_name
        self.imports: Dict[str, str] = {}
        self.module_deps: Set[str] = set()
        self.classes: Dict[str, Dict[str, Any]] = {}
        self.functions: Dict[str, Dict[str, Any]] = {}
        self.module_facts = _FunctionFacts("<module>", None, ast.FunctionDef())
        self.module_state: Set[str] = set()
        self.module_locks: Set[str] = set()
        self._class_stack: List[str] = []
        self._function_stack: List[_FunctionFacts] = []
        self._with_guards: List[str] = []

    # ------------------------------------------------------------------
    # Imports
    # ------------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.imports[local] = target
            self.module_deps.add(alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            # Relative imports: resolve against this module's package.
            package = self.module_name.rsplit(".", node.level or 1)[0] if node.level else ""
            base = ".".join(p for p in (package, node.module or "") if p)
        else:
            base = node.module
        if base:
            self.module_deps.add(base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self.imports[local] = f"{base}.{alias.name}"

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._class_stack or self._function_stack:
            self.generic_visit(node)
            return
        self.classes[node.name] = {
            "line": node.lineno,
            "bases": [terminal_name(b) for b in node.bases if terminal_name(b)],
            "methods": {},
            "attr_types": {},
        }
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _enter_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        class_name = self._class_stack[-1] if self._class_stack else None
        if self._function_stack:
            # Nested helpers fold their facts into the enclosing function.
            self.generic_visit(node)
            return
        facts = _FunctionFacts(node.name, class_name, node)
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            facts.local_names.add(arg.arg)
            ann = _annotation_name(arg.annotation)
            if ann:
                facts.param_types[arg.arg] = ann
            if arg.arg == "arena" or ann == "Arena":
                facts.arena_vars.add(arg.arg)
        self._function_stack.append(facts)
        self.generic_visit(node)
        self._function_stack.pop()
        qual = f"{class_name}.{node.name}" if class_name else node.name
        self.functions[qual] = facts.to_dict()
        if class_name:
            self.classes[class_name]["methods"][node.name] = qual

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    @property
    def _facts(self) -> _FunctionFacts:
        return self._function_stack[-1] if self._function_stack else self.module_facts

    def visit_Global(self, node: ast.Global) -> None:
        self._facts.global_names.update(node.names)

    def visit_Return(self, node: ast.Return) -> None:
        facts = self._facts
        if isinstance(node.value, ast.Name):
            facts.returned_names.add(node.value.id)
        elif isinstance(node.value, ast.Call):
            name = terminal_name(node.value.func)
            if name and name[:1].isupper():
                facts.returns_ctor = name
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        guards = [
            dotted_name(item.context_expr.func)
            or terminal_name(item.context_expr.func)
            if isinstance(item.context_expr, ast.Call)
            else dotted_name(item.context_expr) or terminal_name(item.context_expr)
            for item in node.items
        ]
        self._with_guards.extend(g for g in guards if g)
        for item in node.items:
            self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        for g in guards:
            if g:
                self._with_guards.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_assignment(node.targets, node.value)
        for target in node.targets:
            self._record_mutation(target, node)
            self._record_state_subscript_write(target, node)
            self._record_view_write(target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_assignment([node.target], node.value)
        self._record_mutation(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_mutation(node.target, node)
        self._record_state_subscript_write(node.target, node)
        self._record_view_write(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_state_subscript_write(target, node, op="del")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        facts = self._facts
        desc = _call_descriptor(node)
        if desc is not None:
            facts.calls.append(desc)
        name = terminal_name(node.func)
        dotted = dotted_name(node.func)
        if name in REFRESH_CALLS:
            facts.refreshes = True
        if name in REGISTRY_MUTATORS:
            facts.registry_calls.append(
                {"line": node.lineno, "col": node.col_offset + 1, "name": name}
            )
        self._record_allocation(node, name, dotted, facts)
        self._record_spawn(node, name, facts)
        self._record_arena_call(node, name, dotted, facts)
        self._record_state_method_write(node, name, facts)
        self.generic_visit(node)

    def visit_List(self, node: ast.List) -> None:
        self._record_display(node, "list display")
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        self._record_display(node, "dict display")
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        self._record_display(node, "set display")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._record_display(node, "list comprehension")
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._record_display(node, "set comprehension")
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._record_display(node, "dict comprehension")
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # Fact recorders
    # ------------------------------------------------------------------
    def _record_display(self, node: ast.expr, what: str) -> None:
        if self._function_stack:
            self._facts.allocations.append(
                {"line": node.lineno, "col": node.col_offset + 1, "what": what}
            )

    def _record_allocation(
        self, node: ast.Call, name: str, dotted: str, facts: _FunctionFacts
    ) -> None:
        if not self._function_stack:
            return
        root = dotted.split(".", 1)[0] if dotted else ""
        if root in ("np", "numpy") and name in NP_ALLOCATORS:
            facts.allocations.append(
                {"line": node.lineno, "col": node.col_offset + 1,
                 "what": f"{dotted}(...)"}
            )
        elif isinstance(node.func, ast.Name) and name in CONTAINER_CONSTRUCTORS:
            facts.allocations.append(
                {"line": node.lineno, "col": node.col_offset + 1,
                 "what": f"{name}(...)"}
            )

    def _record_spawn(self, node: ast.Call, name: str, facts: _FunctionFacts) -> None:
        if name in THREAD_SPAWN_CALLS:
            kind = "thread"
        elif name in PROCESS_SPAWN_CALLS:
            kind = "process"
        else:
            return
        candidates: List[ast.expr] = list(node.args)
        candidates.extend(kw.value for kw in node.keywords if kw.arg == "target")
        for candidate in candidates:
            ref = _ref_descriptor(candidate)
            if ref is not None:
                facts.callable_refs.append(
                    {**ref, "spawn": kind, "line": node.lineno}
                )

    def _record_arena_call(
        self, node: ast.Call, name: str, dotted: str, facts: _FunctionFacts
    ) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = dotted_name(func.value)
        if name in ARENA_CONSTRUCTORS and terminal_name(func.value) == "Arena":
            facts.arena_events.append(
                {"line": node.lineno, "col": node.col_offset + 1,
                 "op": name, "var": ""}
            )
            return
        is_arena = receiver in facts.arena_vars or (
            receiver.startswith("self.")
            and self._self_attr_is_arena(receiver.split(".", 1)[1])
        )
        if is_arena and name in ("close", "array"):
            facts.arena_events.append(
                {"line": node.lineno, "col": node.col_offset + 1,
                 "op": name, "var": receiver}
            )

    def _self_attr_is_arena(self, attr: str) -> bool:
        if not self._class_stack:
            return False
        attr_types = self.classes.get(self._class_stack[-1], {}).get("attr_types", {})
        return bool(attr_types.get(attr) == "Arena")

    def _record_assignment(self, targets: List[ast.expr], value: ast.expr) -> None:
        facts = self._facts
        simple = [t for t in targets if isinstance(t, ast.Name)]
        for target in simple:
            facts.local_names.add(target.id)
        if not isinstance(value, ast.Call):
            if not self._function_stack and not self._class_stack and simple:
                if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                                      ast.ListComp, ast.SetComp)):
                    self.module_state.update(t.id for t in simple)
            return
        ctor = terminal_name(value.func)
        dotted = dotted_name(value.func)
        if not self._function_stack and not self._class_stack and simple:
            # Module level: classify mutable-state and lock bindings.
            if ctor in MUTABLE_STATE_CONSTRUCTORS:
                self.module_state.update(t.id for t in simple)
            elif ctor in ("Lock", "RLock", "Condition", "Semaphore"):
                self.module_locks.update(t.id for t in simple)
            return
        if not self._function_stack:
            return
        for target in simple:
            if (
                terminal_name(getattr(value.func, "value", ast.Name(id="")))
                == "Arena"
                and ctor in ARENA_CONSTRUCTORS
            ):
                facts.arena_vars.add(target.id)
                facts.arena_events.append(
                    {"line": value.lineno, "col": value.col_offset + 1,
                     "op": ctor, "var": target.id}
                )
            elif ctor and ctor[:1].isupper() and isinstance(
                value.func, (ast.Name, ast.Attribute)
            ):
                facts.local_types[target.id] = ctor
            elif isinstance(value.func, ast.Name):
                facts.local_calls[target.id] = ctor
            # Views carved out of an arena: v = arena.array("x")
            receiver = dotted_name(getattr(value.func, "value", ast.Name(id="")))
            if ctor == "array" and receiver in facts.arena_vars:
                facts.view_vars[target.id] = receiver
        # Class-body attribute typing: self.X = Ctor(...) / self.X = param
        if self._class_stack and targets:
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attr_types = self.classes[self._class_stack[-1]]["attr_types"]
                    if ctor in ARENA_CONSTRUCTORS and terminal_name(
                        getattr(value.func, "value", ast.Name(id=""))
                    ) == "Arena":
                        attr_types.setdefault(target.attr, "Arena")
                    elif ctor and ctor[:1].isupper():
                        attr_types.setdefault(target.attr, ctor)

    def _record_self_param_attr(self, target: ast.expr, value: ast.expr) -> None:
        pass  # folded into _record_assignment / visit_Assign below

    def _record_mutation(self, target: ast.expr, node: ast.stmt) -> None:
        inner = target
        if isinstance(inner, ast.Subscript):
            inner = inner.value
        if not isinstance(inner, ast.Attribute) or inner.attr not in PROTECTED_ATTRS:
            return
        base = inner.value
        if isinstance(base, ast.Name):
            if base.id == "self":
                # Unlike ABFT001 we *record* self.data stores: project mode
                # can tell construction from escaping mutation via callers.
                base_kind, base_name = "self", "self"
            else:
                facts = self._facts
                base_kind = (
                    "param" if base.id in facts.param_types
                    or base.id in self._param_names()
                    else "local"
                )
                base_name = base.id
        elif (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            base_kind = "self_attr"
            base_name = dotted_name(base)
        else:
            base_kind = "other"
            base_name = dotted_name(base)
        self._facts.mutations.append(
            {
                "line": node.lineno,
                "col": node.col_offset + 1,
                "target": dotted_name(inner),
                "base": base_name,
                "base_kind": base_kind,
            }
        )

    def _param_names(self) -> Set[str]:
        if not self._function_stack:
            return set()
        args = self._function_stack[-1].node.args
        return {a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]}

    def _record_state_subscript_write(
        self, target: ast.expr, node: ast.stmt, op: str = "store"
    ) -> None:
        if not isinstance(target, ast.Subscript):
            return
        base = target.value
        if not isinstance(base, ast.Name):
            return
        facts = self._facts
        if self._function_stack and base.id in facts.local_names and (
            base.id not in facts.global_names
        ):
            return
        facts.state_writes.append(
            {
                "line": node.lineno,
                "col": node.col_offset + 1,
                "name": base.id,
                "op": op,
                "guards": list(self._with_guards),
            }
        )

    def _record_state_method_write(
        self, node: ast.Call, name: str, facts: _FunctionFacts
    ) -> None:
        if name not in STATE_MUTATOR_METHODS:
            return
        func = node.func
        if not isinstance(func, ast.Attribute) or not isinstance(func.value, ast.Name):
            return
        base = func.value.id
        if self._function_stack and base in facts.local_names and (
            base not in facts.global_names
        ):
            return
        facts.state_writes.append(
            {
                "line": node.lineno,
                "col": node.col_offset + 1,
                "name": base,
                "op": name,
                "guards": list(self._with_guards),
            }
        )

    def _record_view_write(self, target: ast.expr, node: ast.stmt) -> None:
        if not isinstance(target, ast.Subscript):
            return
        base = target.value
        if not isinstance(base, ast.Name):
            return
        facts = self._facts
        arena = facts.view_vars.get(base.id)
        if arena is not None:
            facts.arena_events.append(
                {"line": node.lineno, "col": node.col_offset + 1,
                 "op": "view_write", "var": arena}
            )


def extract_summary(module_name: str, tree: ast.Module) -> Summary:
    """Build the JSON-serializable summary of one parsed module."""
    extractor = _SummaryExtractor(module_name)
    extractor.visit(tree)
    module_facts = extractor.module_facts.to_dict()
    return {
        "module": module_name,
        "imports": extractor.imports,
        "module_deps": sorted(extractor.module_deps),
        "classes": extractor.classes,
        "functions": extractor.functions,
        "module_level": {
            "mutable_state": sorted(extractor.module_state),
            "locks": sorted(extractor.module_locks),
            "registry_calls": module_facts["registry_calls"],
            "arena_events": module_facts["arena_events"],
            "calls": module_facts["calls"],
            "callable_refs": module_facts["callable_refs"],
        },
    }
